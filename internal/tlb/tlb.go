// Package tlb implements the instruction and data translation lookaside
// buffers, including supervisor permission bits. Permission checks are
// recorded at translation time but — as on the Meltdown-vulnerable pipeline
// the paper simulates — the fault is only raised when the instruction
// reaches commit; the transient window in between is where the attack leaks.
package tlb

import "perspectron/internal/stats"

// Config sizes one TLB.
type Config struct {
	Entries     int
	PageBytes   int
	WalkLatency uint64 // page table walk cost in cycles
}

// DefaultConfig is a 64-entry 4 KiB-page TLB.
func DefaultConfig() Config {
	return Config{Entries: 64, PageBytes: 4096, WalkLatency: 50}
}

// KernelBase marks the start of supervisor-only address space in the
// simulated layout; user accesses at or above it fault.
const KernelBase = 0xffff_8000_0000_0000

// Unmapped marks addresses with no translation at all (breakingKASLR probes
// these and takes the full walk + fault path).
const Unmapped = 0xffff_f000_0000_0000

// Counters groups one TLB's statistics, named after gem5's dtb/itb stats.
type Counters struct {
	RdAccesses *stats.Counter
	WrAccesses *stats.Counter
	RdHits     *stats.Counter
	WrHits     *stats.Counter
	RdMisses   *stats.Counter
	WrMisses   *stats.Counter
	Walks      *stats.Counter
	WalkCycles *stats.Counter
	PermFaults *stats.Counter
	PageFaults *stats.Counter
	Flushes    *stats.Counter
}

func newCounters(reg *stats.Registry, comp stats.Component, name string) Counters {
	mk := func(suffix, desc string) *stats.Counter {
		return reg.NewRaw(comp, name+"."+suffix, desc)
	}
	return Counters{
		RdAccesses: mk("rdAccesses", "read translations"),
		WrAccesses: mk("wrAccesses", "write translations"),
		RdHits:     mk("rdHits", "read TLB hits"),
		WrHits:     mk("wrHits", "write TLB hits"),
		RdMisses:   mk("rdMisses", "read TLB misses"),
		WrMisses:   mk("wrMisses", "write TLB misses"),
		Walks:      mk("walks", "page table walks"),
		WalkCycles: mk("walkCycles", "page table walk cycles"),
		PermFaults: mk("permFaults", "supervisor permission violations detected"),
		PageFaults: mk("pageFaults", "translations of unmapped addresses"),
		Flushes:    mk("flushes", "TLB flushes"),
	}
}

type entry struct {
	vpn        uint64
	valid      bool
	supervisor bool
	lastUse    uint64
}

// Result describes one translation.
type Result struct {
	Latency   uint64
	PermFault bool // supervisor page touched from user mode (deferred fault)
	PageFault bool // no mapping exists
}

// TLB is one translation buffer.
type TLB struct {
	cfg  Config
	C    Counters
	ents []entry
	tick uint64
}

// New constructs a TLB with counters under comp/name ("dtb" or "itb").
func New(cfg Config, reg *stats.Registry, comp stats.Component, name string) *TLB {
	return &TLB{cfg: cfg, C: newCounters(reg, comp, name), ents: make([]entry, cfg.Entries)}
}

// Translate translates addr for a user-mode access. write selects the
// rd/wr counter family.
func (t *TLB) Translate(addr uint64, write bool) Result {
	t.tick++
	if write {
		t.C.WrAccesses.Inc()
	} else {
		t.C.RdAccesses.Inc()
	}

	if addr >= Unmapped {
		// No translation exists: full walk, then page fault.
		t.miss(write)
		t.C.PageFaults.Inc()
		return Result{Latency: t.cfg.WalkLatency, PageFault: true}
	}

	super := addr >= KernelBase
	vpn := addr / uint64(t.cfg.PageBytes)
	i := int(vpn % uint64(len(t.ents)))
	e := &t.ents[i]
	if e.valid && e.vpn == vpn {
		if write {
			t.C.WrHits.Inc()
		} else {
			t.C.RdHits.Inc()
		}
		e.lastUse = t.tick
		if super && e.supervisor {
			t.C.PermFaults.Inc()
			return Result{Latency: 1, PermFault: true}
		}
		return Result{Latency: 1}
	}

	t.miss(write)
	*e = entry{vpn: vpn, valid: true, supervisor: super, lastUse: t.tick}
	res := Result{Latency: t.cfg.WalkLatency}
	if super {
		t.C.PermFaults.Inc()
		res.PermFault = true
	}
	return res
}

func (t *TLB) miss(write bool) {
	if write {
		t.C.WrMisses.Inc()
	} else {
		t.C.RdMisses.Inc()
	}
	t.C.Walks.Inc()
	t.C.WalkCycles.Add(float64(t.cfg.WalkLatency))
}

// Flush invalidates all entries (context switch / attack hygiene).
func (t *TLB) Flush() {
	for i := range t.ents {
		t.ents[i] = entry{}
	}
	t.C.Flushes.Inc()
}
