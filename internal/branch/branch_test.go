package branch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"perspectron/internal/stats"
)

func newTestPredictor() (*Predictor, *stats.Registry) {
	reg := stats.NewRegistry()
	p := New(DefaultConfig(), reg)
	reg.Seal()
	return p, reg
}

func TestCondLearnsBias(t *testing.T) {
	p, _ := newTestPredictor()
	pc := uint64(0x400100)
	// Warm up on an always-taken branch; after warmup the predictor should
	// be near-perfect.
	for i := 0; i < 16; i++ {
		p.PredictCond(pc, true)
	}
	wrong := 0
	for i := 0; i < 100; i++ {
		if !p.PredictCond(pc, true) {
			wrong++
		}
	}
	if wrong != 0 {
		t.Fatalf("mispredicted %d/100 on biased branch", wrong)
	}
	if p.C.CondPredicted.Value() != 116 {
		t.Fatalf("condPredicted = %v", p.C.CondPredicted.Value())
	}
}

func TestCondMistrainThenFlip(t *testing.T) {
	p, _ := newTestPredictor()
	pc := uint64(0x400200)
	for i := 0; i < 32; i++ {
		p.PredictCond(pc, true)
	}
	before := p.C.CondIncorrect.Value()
	if p.PredictCond(pc, false) {
		t.Fatalf("flip after mistraining should mispredict")
	}
	if p.C.CondIncorrect.Value() != before+1 {
		t.Fatalf("condIncorrect not incremented")
	}
}

func TestCondLearnsAlternatingViaLocalHistory(t *testing.T) {
	p, _ := newTestPredictor()
	pc := uint64(0x400300)
	// Alternating pattern is learnable by the local history predictor.
	taken := false
	for i := 0; i < 400; i++ {
		p.PredictCond(pc, taken)
		taken = !taken
	}
	wrong := 0
	for i := 0; i < 100; i++ {
		if !p.PredictCond(pc, taken) {
			wrong++
		}
		taken = !taken
	}
	if wrong > 5 {
		t.Fatalf("alternating pattern mispredicted %d/100", wrong)
	}
}

func TestBTBInstallAndHit(t *testing.T) {
	p, _ := newTestPredictor()
	if p.LookupBTB(0x400, 0x500) {
		t.Fatalf("cold BTB lookup hit")
	}
	if !p.LookupBTB(0x400, 0x500) {
		t.Fatalf("warm BTB lookup missed")
	}
	// Changed target counts as a miss and reinstalls.
	if p.LookupBTB(0x400, 0x600) {
		t.Fatalf("target mismatch reported as hit")
	}
	if !p.LookupBTB(0x400, 0x600) {
		t.Fatalf("reinstalled target missed")
	}
	if p.C.BTBLookups.Value() != 4 || p.C.BTBHits.Value() != 2 {
		t.Fatalf("lookups=%v hits=%v", p.C.BTBLookups.Value(), p.C.BTBHits.Value())
	}
}

func TestRASBalancedCallsCorrect(t *testing.T) {
	p, _ := newTestPredictor()
	for depth := 1; depth <= 8; depth++ {
		for i := 0; i < depth; i++ {
			p.Call(uint64(0x1000 + i))
		}
		for i := depth - 1; i >= 0; i-- {
			if !p.Return(uint64(0x1000 + i)) {
				t.Fatalf("balanced return mispredicted at depth %d", depth)
			}
		}
	}
	if p.C.RASIncorrect.Value() != 0 {
		t.Fatalf("RASIncorrect = %v on balanced calls", p.C.RASIncorrect.Value())
	}
}

func TestRASUnbalancedPollutionMispredicts(t *testing.T) {
	p, _ := newTestPredictor()
	p.Call(0x2000)
	p.PolluteRAS(0xdead)
	if p.Return(0x2000) {
		t.Fatalf("polluted RAS predicted correctly")
	}
	if p.C.RASIncorrect.Value() != 1 {
		t.Fatalf("RASIncorrect = %v", p.C.RASIncorrect.Value())
	}
}

func TestRASEmptyReturnIncorrect(t *testing.T) {
	p, _ := newTestPredictor()
	if p.Return(0x3000) {
		t.Fatalf("return on empty RAS predicted correctly")
	}
}

func TestRASOverflowCircular(t *testing.T) {
	p, _ := newTestPredictor()
	n := DefaultConfig().RASEntries
	for i := 0; i < n+4; i++ {
		p.Call(uint64(0x1000 + i))
	}
	if p.RASDepth() != n {
		t.Fatalf("depth = %d, want %d", p.RASDepth(), n)
	}
	// The most recent n calls should unwind correctly.
	for i := n + 3; i >= 4; i-- {
		if !p.Return(uint64(0x1000 + i)) {
			t.Fatalf("overflowed RAS lost recent entry %d", i)
		}
	}
	// The oldest 4 were overwritten.
	if p.Return(0x1003) {
		t.Fatalf("overwritten entry predicted correctly")
	}
}

func TestIndirectMistrain(t *testing.T) {
	p, _ := newTestPredictor()
	pc := uint64(0x5000)
	p.PredictIndirect(pc, 0xaaaa) // install
	if !p.PredictIndirect(pc, 0xaaaa) {
		t.Fatalf("stable indirect target missed")
	}
	p.MistrainIndirect(pc, 0xbbbb)
	if p.PredictIndirect(pc, 0xaaaa) {
		t.Fatalf("mistrained indirect branch predicted correctly")
	}
	if p.C.IndirectMispredicted.Value() != 2 {
		t.Fatalf("indirectMispredicted = %v", p.C.IndirectMispredicted.Value())
	}
}

func TestSquashCounter(t *testing.T) {
	p, _ := newTestPredictor()
	p.Squash(5)
	if p.C.SquashedDirUpdates.Value() != 5 {
		t.Fatalf("squashedDirUpdates = %v", p.C.SquashedDirUpdates.Value())
	}
}

// Property: counters never decrease and condIncorrect <= condPredicted for
// any branch stream.
func TestQuickCounterInvariants(t *testing.T) {
	f := func(pcs []uint16, dirs []bool) bool {
		p, _ := newTestPredictor()
		n := len(pcs)
		if len(dirs) < n {
			n = len(dirs)
		}
		for i := 0; i < n; i++ {
			p.PredictCond(uint64(pcs[i]), dirs[i])
		}
		return p.C.CondIncorrect.Value() <= p.C.CondPredicted.Value() &&
			p.C.CondPredicted.Value() == float64(n) &&
			p.C.UsedLocal.Value()+p.C.UsedGlobal.Value() == float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// Property: RAS depth is bounded by capacity for any call/return sequence.
func TestQuickRASDepthBounded(t *testing.T) {
	f := func(ops []bool) bool {
		p, _ := newTestPredictor()
		for i, call := range ops {
			if call {
				p.Call(uint64(i + 1))
			} else {
				p.Return(uint64(i + 1))
			}
			if p.RASDepth() < 0 || p.RASDepth() > DefaultConfig().RASEntries {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}
