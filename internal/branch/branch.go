// Package branch implements the branch prediction unit of the simulated
// machine: a tournament predictor (local + global + choice), a branch target
// buffer, a return address stack, and an indirect-target predictor. It
// mirrors the gem5 TournamentBP configured in the paper's Table II
// (16 RAS entries, 4096 BTB entries).
//
// The unit exposes the branchPred.* counters that appear throughout the
// paper's feature analysis: condPredicted, condIncorrect, RASInCorrect,
// indirectMispredicted, BTBLookups/BTBHits, and the usage counters that feed
// replicated detectors in other pipeline stages.
package branch

import "perspectron/internal/stats"

// Config sizes the predictor structures.
type Config struct {
	LocalHistoryBits  int // log2 of local history table entries
	LocalCtrBits      int // saturating counter width, typically 2
	GlobalHistoryBits int // global history register width
	BTBEntries        int // Table II: 4096
	RASEntries        int // Table II: 16
	IndirectEntries   int // indirect target cache entries
}

// DefaultConfig matches the paper's Table II tournament predictor.
func DefaultConfig() Config {
	return Config{
		LocalHistoryBits:  11,
		LocalCtrBits:      2,
		GlobalHistoryBits: 12,
		BTBEntries:        4096,
		RASEntries:        16,
		IndirectEntries:   256,
	}
}

// Counters groups the branchPred.* statistics.
type Counters struct {
	Lookups              *stats.Counter
	CondPredicted        *stats.Counter
	CondIncorrect        *stats.Counter
	BTBLookups           *stats.Counter
	BTBHits              *stats.Counter
	RASUsed              *stats.Counter
	RASIncorrect         *stats.Counter
	IndirectLookups      *stats.Counter
	IndirectHits         *stats.Counter
	IndirectMispredicted *stats.Counter
	UsedLocal            *stats.Counter
	UsedGlobal           *stats.Counter
	SquashedDirUpdates   *stats.Counter
	NoiseInjected        *stats.Counter
}

func newCounters(reg *stats.Registry) Counters {
	c := stats.CompBranchPred
	return Counters{
		Lookups:              reg.New(c, "lookups", "total branch predictor lookups"),
		CondPredicted:        reg.New(c, "condPredicted", "conditional branches predicted"),
		CondIncorrect:        reg.New(c, "condIncorrect", "conditional branches mispredicted"),
		BTBLookups:           reg.New(c, "BTBLookups", "BTB lookups"),
		BTBHits:              reg.New(c, "BTBHits", "BTB hits"),
		RASUsed:              reg.New(c, "usedRAS", "return address stack predictions used"),
		RASIncorrect:         reg.New(c, "RASInCorrect", "incorrect RAS predictions"),
		IndirectLookups:      reg.New(c, "indirectLookups", "indirect target predictor lookups"),
		IndirectHits:         reg.New(c, "indirectHits", "indirect target predictor hits"),
		IndirectMispredicted: reg.New(c, "indirectMispredicted", "indirect branches mispredicted"),
		UsedLocal:            reg.New(c, "usedLocal", "predictions taken from the local predictor"),
		UsedGlobal:           reg.New(c, "usedGlobal", "predictions taken from the global predictor"),
		SquashedDirUpdates:   reg.New(c, "squashedDirUpdates", "direction updates dropped due to squash"),
		NoiseInjected:        reg.New(c, "noiseInjected", "predictions randomized by the mitigation (§IV-G1)"),
	}
}

// Predictor is the full branch prediction unit.
type Predictor struct {
	cfg Config
	C   Counters

	localHist  []uint32 // per-PC history registers
	localCtrs  []int8   // indexed by local history
	globalCtrs []int8   // indexed by global history
	choiceCtrs []int8   // chooses local vs global
	globalHist uint32

	btbTags    []uint64
	btbTargets []uint64
	btbValid   []bool

	ras    []uint64
	rasTop int // number of valid entries

	indTags    []uint64
	indTargets []uint64

	// noisePermille randomizes predictions at the given rate (per mille)
	// when nonzero — the paper's branch-predictor noise-injection
	// mitigation. An internal LCG keeps the stream deterministic yet
	// unobservable by the attacker.
	noisePermille int
	noiseState    uint64
}

// SetNoise enables prediction randomization at ratePermille/1000 (0
// disables). Injected noise occasionally reverses predictions, destroying
// the reliability of predictor mistraining at the cost of extra benign
// mispredicts.
func (p *Predictor) SetNoise(ratePermille int) {
	p.noisePermille = ratePermille
	p.noiseState = 0x9e3779b97f4a7c15
}

// noisy reports whether this prediction is randomized.
func (p *Predictor) noisy() bool {
	if p.noisePermille == 0 {
		return false
	}
	p.noiseState = p.noiseState*6364136223846793005 + 1442695040888963407
	if int((p.noiseState>>33)%1000) < p.noisePermille {
		p.C.NoiseInjected.Inc()
		return true
	}
	return false
}

// New constructs a predictor registering its counters in reg.
func New(cfg Config, reg *stats.Registry) *Predictor {
	p := &Predictor{
		cfg:        cfg,
		C:          newCounters(reg),
		localHist:  make([]uint32, 1<<10),
		localCtrs:  make([]int8, 1<<cfg.LocalHistoryBits),
		globalCtrs: make([]int8, 1<<cfg.GlobalHistoryBits),
		choiceCtrs: make([]int8, 1<<cfg.GlobalHistoryBits),
		btbTags:    make([]uint64, cfg.BTBEntries),
		btbTargets: make([]uint64, cfg.BTBEntries),
		btbValid:   make([]bool, cfg.BTBEntries),
		ras:        make([]uint64, cfg.RASEntries),
		indTags:    make([]uint64, cfg.IndirectEntries),
		indTargets: make([]uint64, cfg.IndirectEntries),
	}
	return p
}

func (p *Predictor) localIndex(pc uint64) int {
	h := p.localHist[pc%uint64(len(p.localHist))]
	return int(h) & (len(p.localCtrs) - 1)
}

func (p *Predictor) globalIndex(pc uint64) int {
	return int(uint64(p.globalHist)^(pc>>2)) & (len(p.globalCtrs) - 1)
}

// PredictCond predicts the direction of a conditional branch at pc, then
// updates the predictor with the actual outcome `taken`. It returns true if
// the prediction was correct. This folds the lookup/update pair together
// because the simulator resolves branches within the same pipeline event.
func (p *Predictor) PredictCond(pc uint64, taken bool) (correct bool) {
	p.C.Lookups.Inc()
	p.C.CondPredicted.Inc()

	li := p.localIndex(pc)
	gi := p.globalIndex(pc)
	localTaken := p.localCtrs[li] >= 0
	globalTaken := p.globalCtrs[gi] >= 0
	useGlobal := p.choiceCtrs[gi] >= 0

	var pred bool
	if useGlobal {
		pred = globalTaken
		p.C.UsedGlobal.Inc()
	} else {
		pred = localTaken
		p.C.UsedLocal.Inc()
	}
	if p.noisy() {
		pred = !pred
	}
	correct = pred == taken

	// Choice update: strengthen the component that was right when they
	// disagreed.
	if localTaken != globalTaken {
		if globalTaken == taken {
			p.choiceCtrs[gi] = satInc(p.choiceCtrs[gi])
		} else {
			p.choiceCtrs[gi] = satDec(p.choiceCtrs[gi])
		}
	}
	if taken {
		p.localCtrs[li] = satInc(p.localCtrs[li])
		p.globalCtrs[gi] = satInc(p.globalCtrs[gi])
	} else {
		p.localCtrs[li] = satDec(p.localCtrs[li])
		p.globalCtrs[gi] = satDec(p.globalCtrs[gi])
	}

	// History updates.
	hi := pc % uint64(len(p.localHist))
	p.localHist[hi] = (p.localHist[hi] << 1) & ((1 << p.cfg.LocalHistoryBits) - 1)
	p.globalHist = (p.globalHist << 1) & ((1 << p.cfg.GlobalHistoryBits) - 1)
	if taken {
		p.localHist[hi] |= 1
		p.globalHist |= 1
	}

	if !correct {
		p.C.CondIncorrect.Inc()
	}
	return correct
}

// LookupBTB queries the BTB for pc's target and installs target on miss or
// mismatch. It returns whether the stored target matched.
func (p *Predictor) LookupBTB(pc, target uint64) (hit bool) {
	p.C.BTBLookups.Inc()
	i := int(pc>>2) % p.cfg.BTBEntries
	if p.btbValid[i] && p.btbTags[i] == pc && p.btbTargets[i] == target {
		p.C.BTBHits.Inc()
		hit = true
	}
	p.btbValid[i] = true
	p.btbTags[i] = pc
	p.btbTargets[i] = target
	return hit
}

// Call pushes a return address on the RAS (overwriting the bottom on
// overflow, as a circular hardware stack does).
func (p *Predictor) Call(retAddr uint64) {
	if p.rasTop < len(p.ras) {
		p.ras[p.rasTop] = retAddr
		p.rasTop++
		return
	}
	copy(p.ras, p.ras[1:])
	p.ras[len(p.ras)-1] = retAddr
}

// Return pops the RAS and compares against the actual return target. It
// returns true when the RAS prediction was correct. An empty or polluted RAS
// (as produced by SpectreRSB's unbalanced call/return pairs) yields an
// incorrect prediction, counted in RASInCorrect.
func (p *Predictor) Return(actualTarget uint64) (correct bool) {
	p.C.RASUsed.Inc()
	var predicted uint64
	if p.rasTop > 0 {
		p.rasTop--
		predicted = p.ras[p.rasTop]
	}
	correct = predicted == actualTarget && predicted != 0
	if !correct {
		p.C.RASIncorrect.Inc()
	}
	return correct
}

// PolluteRAS overwrites the top RAS entry without a matching call, the
// primitive SpectreRSB uses to redirect speculative control flow.
func (p *Predictor) PolluteRAS(target uint64) {
	if p.rasTop == 0 {
		p.Call(target)
		return
	}
	p.ras[p.rasTop-1] = target
}

// RASDepth returns the number of valid RAS entries (for tests).
func (p *Predictor) RASDepth() int { return p.rasTop }

// PredictIndirect predicts the target of an indirect branch at pc and
// updates the target cache with the actual target. It returns whether the
// prediction was correct.
func (p *Predictor) PredictIndirect(pc, target uint64) (correct bool) {
	p.C.IndirectLookups.Inc()
	i := int(pc>>2) % p.cfg.IndirectEntries
	if p.indTags[i] == pc && p.indTargets[i] == target {
		p.C.IndirectHits.Inc()
		correct = true
	} else {
		p.C.IndirectMispredicted.Inc()
	}
	p.indTags[i] = pc
	p.indTargets[i] = target
	return correct
}

// MistrainIndirect installs an attacker-chosen target for pc, the SpectreV2
// (branch target injection) training primitive.
func (p *Predictor) MistrainIndirect(pc, target uint64) {
	i := int(pc>>2) % p.cfg.IndirectEntries
	p.indTags[i] = pc
	p.indTargets[i] = target
}

// Squash notifies the predictor that in-flight direction updates were
// discarded by a pipeline squash.
func (p *Predictor) Squash(n int) {
	p.C.SquashedDirUpdates.Add(float64(n))
}

func satInc(v int8) int8 {
	if v < 1 {
		return v + 1
	}
	return v
}

func satDec(v int8) int8 {
	if v > -2 {
		return v - 1
	}
	return v
}
