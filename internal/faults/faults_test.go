package faults

import (
	"math"
	"math/rand"
	"testing"

	"perspectron/internal/sim"
	"perspectron/internal/workload/benign"
)

func vec(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestDropoutRateAndDeterminism(t *testing.T) {
	s := NewSchedule(7, Dropout{Rate: 0.2})
	a := vec(10_000, 1)
	b := vec(10_000, 1)
	s.ApplyOne(3, a)
	s.ApplyOne(3, b)
	missing := 0
	for i := range a {
		if IsMissing(a[i]) != IsMissing(b[i]) {
			t.Fatalf("same seed+index produced different dropout at %d", i)
		}
		if IsMissing(a[i]) {
			missing++
		}
	}
	rate := float64(missing) / float64(len(a))
	if rate < 0.17 || rate > 0.23 {
		t.Fatalf("dropout rate %.3f, want ~0.2", rate)
	}
	// A different sample index must draw a different pattern.
	c := vec(10_000, 1)
	s.ApplyOne(4, c)
	same := 0
	for i := range a {
		if IsMissing(a[i]) == IsMissing(c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("dropout pattern identical across sample indices")
	}
}

func TestCoverage(t *testing.T) {
	v := []float64{1, 2, Missing(), 4}
	if got := Coverage(v); got != 0.75 {
		t.Fatalf("coverage = %v, want 0.75", got)
	}
	if got := Coverage(nil); got != 1 {
		t.Fatalf("empty coverage = %v, want 1", got)
	}
}

func TestStuckAtPersistsAcrossSamples(t *testing.T) {
	s := NewSchedule(11, StuckAtZero{Frac: 0.3})
	a := vec(2000, 5)
	b := vec(2000, 5)
	s.ApplyOne(0, a)
	s.ApplyOne(9, b)
	stuck := 0
	for i := range a {
		if (a[i] == 0) != (b[i] == 0) {
			t.Fatalf("stuck-at-zero subset changed between samples at %d", i)
		}
		if a[i] == 0 {
			stuck++
		}
	}
	frac := float64(stuck) / float64(len(a))
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("stuck fraction %.3f, want ~0.3", frac)
	}
}

func TestStuckAtMaxDefaultValue(t *testing.T) {
	s := NewSchedule(11, StuckAtMax{Frac: 1})
	a := vec(4, 5)
	s.ApplyOne(0, a)
	for i, v := range a {
		if v != math.MaxUint32 {
			t.Fatalf("a[%d] = %v, want 2^32-1", i, v)
		}
	}
}

func TestNoisePreservesMissingAndClampsAtZero(t *testing.T) {
	s := NewSchedule(3, Noise{Sigma: 5})
	a := []float64{Missing(), 1, 1, 1, 1, 1, 1, 1}
	s.ApplyOne(0, a)
	if !IsMissing(a[0]) {
		t.Fatalf("noise resurrected a missing value")
	}
	for i, v := range a[1:] {
		if IsMissing(v) || v < 0 {
			t.Fatalf("a[%d] = %v after noise, want finite non-negative", i+1, v)
		}
	}
}

func TestJitterScalesWholeVector(t *testing.T) {
	s := NewSchedule(5, Jitter{Frac: 0.5})
	a := []float64{2, 4, 8}
	s.ApplyOne(0, a)
	// All elements must keep their ratios: a scaled vector.
	if math.Abs(a[1]/a[0]-2) > 1e-9 || math.Abs(a[2]/a[0]-4) > 1e-9 {
		t.Fatalf("jitter broke vector ratios: %v", a)
	}
	if a[0] < 2*0.5 || a[0] > 2*1.5 {
		t.Fatalf("jitter factor out of [0.5,1.5]: %v", a[0]/2)
	}
}

func TestBlackoutComponentWindow(t *testing.T) {
	m := sim.NewMachine(sim.DefaultConfig())
	b, err := NewBlackout(m.Reg, "dcache", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Indices) == 0 {
		t.Fatalf("dcache blackout selected no counters")
	}
	s := NewSchedule(1, b)
	n := m.Reg.Len()
	for _, tc := range []struct {
		index int
		want  bool // blacked out?
	}{{0, false}, {1, true}, {2, true}, {3, false}} {
		v := vec(n, 1)
		s.ApplyOne(tc.index, v)
		got := IsMissing(v[b.Indices[0]])
		if got != tc.want {
			t.Fatalf("sample %d: blackout=%v, want %v", tc.index, got, tc.want)
		}
	}
	if _, err := NewBlackout(m.Reg, "warp-drive", 0, 0); err == nil {
		t.Fatalf("unknown component accepted")
	}
}

func TestBlackoutOpenEnded(t *testing.T) {
	b := &Blackout{Indices: []int{0}, From: 2, To: 0}
	s := NewSchedule(1, b)
	v := []float64{1, 1}
	s.ApplyOne(100, v)
	if !IsMissing(v[0]) {
		t.Fatalf("open-ended blackout stopped applying")
	}
}

func TestScheduleComposesInOrder(t *testing.T) {
	// Stuck-at-zero after dropout overwrites missing values with zeros.
	s := NewSchedule(2, Dropout{Rate: 1}, StuckAtZero{Frac: 1})
	v := []float64{3, 3}
	s.ApplyOne(0, v)
	if IsMissing(v[0]) || v[0] != 0 {
		t.Fatalf("composition out of order: %v", v)
	}
	if s.String() != "dropout(1.00) + stuck0(1.00)" {
		t.Fatalf("schedule string = %q", s.String())
	}
	var nilSched *Schedule
	if nilSched.String() != "no faults" {
		t.Fatalf("nil schedule string = %q", nilSched.String())
	}
	nilSched.ApplyOne(0, v) // must not panic
}

func TestAttachFiltersMachineSamples(t *testing.T) {
	prog := benign.All()[0]
	run := func(sched *Schedule) [][]float64 {
		m := sim.NewMachine(sim.DefaultConfig())
		if sched != nil {
			sched.Attach(m)
		}
		return m.Run(prog.Stream(rand.New(rand.NewSource(9))), 35_000, 10_000)
	}
	clean := run(nil)
	faulty := run(NewSchedule(13, Dropout{Rate: 0.5}))
	if len(clean) != len(faulty) {
		t.Fatalf("fault injection changed sample count: %d vs %d", len(clean), len(faulty))
	}
	missing := 0
	total := 0
	for _, v := range faulty {
		total += len(v)
		missing += int(float64(len(v)) * (1 - Coverage(v)))
	}
	frac := float64(missing) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("attached dropout masked %.3f of values, want ~0.5", frac)
	}
	// The trailing partial sample (35K insts at 10K interval) must be
	// filtered too.
	last := faulty[len(faulty)-1]
	if Coverage(last) > 0.7 {
		t.Fatalf("flush-tail sample escaped the fault filter (coverage %.3f)", Coverage(last))
	}
	// Determinism end to end.
	again := run(NewSchedule(13, Dropout{Rate: 0.5}))
	for i := range faulty {
		for j := range faulty[i] {
			a, b := faulty[i][j], again[i][j]
			if (IsMissing(a) != IsMissing(b)) || (!IsMissing(a) && a != b) {
				t.Fatalf("attached schedule not deterministic at [%d][%d]", i, j)
			}
		}
	}
}
