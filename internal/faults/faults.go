// Package faults provides composable counter-level fault models for the
// simulated machine's sampled statistics vectors, plus a deterministic
// seeded schedule that makes fault-injection experiments reproducible.
//
// The paper's evasion argument (§VI) is that PerSpectron's replicated
// detectors keep working when part of the signature is suppressed; related
// counter-based detectors (MAD-EN, Ahmad et al.) report sensor noise and
// sampling disruption as the dominant deployment failure mode. This package
// models exactly that axis: counters can drop out (missing values), stick at
// zero or at their saturation value, pick up Gaussian noise, the sampling
// interval can jitter, and an entire pipeline component can black out.
//
// Missing values are encoded as NaN; the detector's degraded scoring mode
// (see docs/FAULTS.md) masks them and renormalizes the perceptron margin
// over the surviving weights.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"perspectron/internal/sim"
	"perspectron/internal/stats"
)

// Missing returns the sentinel used for a counter value suppressed by a
// fault (NaN).
func Missing() float64 { return math.NaN() }

// IsMissing reports whether v is a suppressed counter value.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Coverage returns the fraction of vec that is observable (not missing).
// An empty vector has coverage 1.
func Coverage(vec []float64) float64 {
	if len(vec) == 0 {
		return 1
	}
	ok := 0
	for _, v := range vec {
		if !IsMissing(v) {
			ok++
		}
	}
	return float64(ok) / float64(len(vec))
}

// Model is one composable counter-level fault. Apply mutates a sampled
// counter-delta vector in place. index is the sampling-interval number; rng
// is deterministically seeded per (schedule seed, model, sample) for
// per-sample randomness; salt is stable per (schedule seed, model) for
// faults that must persist across samples (stuck-at).
type Model interface {
	Name() string
	Apply(index int, vec []float64, rng *rand.Rand, salt uint64)
}

// Dropout suppresses each counter value independently with probability Rate
// per sample — the transient sensor-read failure model.
type Dropout struct{ Rate float64 }

// Name implements Model.
func (d Dropout) Name() string { return fmt.Sprintf("dropout(%.2f)", d.Rate) }

// Apply implements Model.
func (d Dropout) Apply(_ int, vec []float64, rng *rand.Rand, _ uint64) {
	for i := range vec {
		if rng.Float64() < d.Rate {
			vec[i] = Missing()
		}
	}
}

// StuckAtZero pins a persistent fraction Frac of counters to zero for the
// whole run — a dead sensor. The stuck subset is a deterministic function of
// the schedule seed, so it is identical in every sample.
type StuckAtZero struct{ Frac float64 }

// Name implements Model.
func (s StuckAtZero) Name() string { return fmt.Sprintf("stuck0(%.2f)", s.Frac) }

// Apply implements Model.
func (s StuckAtZero) Apply(_ int, vec []float64, _ *rand.Rand, salt uint64) {
	for i := range vec {
		if unit(salt, uint64(i)) < s.Frac {
			vec[i] = 0
		}
	}
}

// StuckAtMax pins a persistent fraction Frac of counters to Value — a
// saturated/railed sensor. Value <= 0 defaults to 2^32-1, a 32-bit
// hardware counter's saturation point.
type StuckAtMax struct {
	Frac  float64
	Value float64
}

// Name implements Model.
func (s StuckAtMax) Name() string { return fmt.Sprintf("stuckMax(%.2f)", s.Frac) }

// Apply implements Model.
func (s StuckAtMax) Apply(_ int, vec []float64, _ *rand.Rand, salt uint64) {
	v := s.Value
	if v <= 0 {
		v = math.MaxUint32
	}
	for i := range vec {
		if unit(salt, uint64(i)) < s.Frac {
			vec[i] = v
		}
	}
}

// Noise applies multiplicative Gaussian noise with relative standard
// deviation Sigma to every observable counter, clamped at zero (counter
// deltas are non-negative).
type Noise struct{ Sigma float64 }

// Name implements Model.
func (n Noise) Name() string { return fmt.Sprintf("noise(%.2f)", n.Sigma) }

// Apply implements Model.
func (n Noise) Apply(_ int, vec []float64, rng *rand.Rand, _ uint64) {
	for i, v := range vec {
		if IsMissing(v) {
			continue
		}
		v *= 1 + n.Sigma*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		vec[i] = v
	}
}

// Jitter models sampling-interval drift: the whole vector is scaled by a
// uniform factor in [1-Frac, 1+Frac], as if the interval fired early or
// late so every delta shrank or grew together.
type Jitter struct{ Frac float64 }

// Name implements Model.
func (j Jitter) Name() string { return fmt.Sprintf("jitter(%.2f)", j.Frac) }

// Apply implements Model.
func (j Jitter) Apply(_ int, vec []float64, rng *rand.Rand, _ uint64) {
	f := 1 + (2*rng.Float64()-1)*j.Frac
	if f < 0 {
		f = 0
	}
	for i, v := range vec {
		if IsMissing(v) {
			continue
		}
		vec[i] = v * f
	}
}

// Blackout suppresses a fixed set of counter indices — typically one whole
// pipeline component — for the sample window [From, To). To <= 0 means
// until the end of the run.
type Blackout struct {
	Indices []int
	From    int
	To      int
	label   string
}

// NewBlackout builds a Blackout covering every counter of the named
// component ("dcache", "branchPred", ...; see stats.ParseComponent) on the
// given registry.
func NewBlackout(reg *stats.Registry, component string, from, to int) (*Blackout, error) {
	comp, err := stats.ParseComponent(component)
	if err != nil {
		return nil, err
	}
	idx := reg.ByComponent(comp)
	if len(idx) == 0 {
		return nil, fmt.Errorf("faults: component %q has no counters", component)
	}
	return &Blackout{Indices: idx, From: from, To: to, label: component}, nil
}

// Name implements Model.
func (b *Blackout) Name() string {
	l := b.label
	if l == "" {
		l = fmt.Sprintf("%d counters", len(b.Indices))
	}
	return fmt.Sprintf("blackout(%s)", l)
}

// Apply implements Model.
func (b *Blackout) Apply(index int, vec []float64, _ *rand.Rand, _ uint64) {
	if index < b.From || (b.To > 0 && index >= b.To) {
		return
	}
	for _, i := range b.Indices {
		if i >= 0 && i < len(vec) {
			vec[i] = Missing()
		}
	}
}

// Schedule composes fault models under one seed. Applying the schedule to
// sample index i always produces the same mutation for the same seed,
// regardless of the order or number of ApplyOne calls, so streaming and
// batch injection agree and experiments are reproducible.
type Schedule struct {
	Seed   int64
	Models []Model
}

// NewSchedule builds a deterministic schedule over the given models.
func NewSchedule(seed int64, models ...Model) *Schedule {
	return &Schedule{Seed: seed, Models: models}
}

// String lists the composed models.
func (s *Schedule) String() string {
	if s == nil || len(s.Models) == 0 {
		return "no faults"
	}
	names := make([]string, len(s.Models))
	for i, m := range s.Models {
		names[i] = m.Name()
	}
	return strings.Join(names, " + ")
}

// ApplyOne runs every model, in order, over one sampled vector in place.
func (s *Schedule) ApplyOne(index int, vec []float64) {
	if s == nil {
		return
	}
	for mi, m := range s.Models {
		salt := mix(uint64(s.Seed), uint64(mi)+1)
		rng := rand.New(rand.NewSource(int64(mix(salt, uint64(index)+1))))
		m.Apply(index, vec, rng, salt)
	}
}

// Apply injects faults into a whole run's sampled vectors in place.
func (s *Schedule) Apply(vecs [][]float64) {
	for i, v := range vecs {
		s.ApplyOne(i, v)
	}
}

// Attach installs the schedule as m's sample filter, so every vector the
// machine samples (including what OnSample hooks observe) passes through
// the fault models before anything downstream sees it.
func (s *Schedule) Attach(m *sim.Machine) { m.SampleFilter = s.ApplyOne }

// mix folds values into a splitmix64-style hash.
func mix(vs ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vs {
		h += v
		h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
		h = (h ^ (h >> 27)) * 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}

// unit maps (salt, i) onto a uniform [0,1) value; it is the persistent
// per-counter coin for stuck-at faults.
func unit(salt, i uint64) float64 {
	return float64(mix(salt, i)>>11) / (1 << 53)
}
