package sched

import (
	"testing"

	"perspectron/internal/workload"
	"perspectron/internal/workload/attacks"
	"perspectron/internal/workload/benign"
)

func TestSchedulerValidation(t *testing.T) {
	if _, err := New(10_000, 3_000, 1, benign.Bzip2()); err == nil {
		t.Fatalf("non-divisible quantum accepted")
	}
	if _, err := New(0, 1_000, 1, benign.Bzip2()); err == nil {
		t.Fatalf("zero quantum accepted")
	}
	if _, err := New(10_000, 10_000, 1); err == nil {
		t.Fatalf("empty task list accepted")
	}
}

func TestRoundRobinAttribution(t *testing.T) {
	s, err := New(10_000, 10_000, 1, benign.Bzip2(), attacks.FlushReload(), benign.Mcf())
	if err != nil {
		t.Fatal(err)
	}
	samples := s.Run(120_000)
	if len(samples) < 9 {
		t.Fatalf("samples = %d", len(samples))
	}
	// Round-robin: consecutive samples rotate through the three tasks.
	for i, smp := range samples {
		if smp.Task != i%3 {
			t.Fatalf("sample %d attributed to task %d, want %d", i, smp.Task, i%3)
		}
	}
	// Attribution carries labels.
	if samples[1].Label != workload.Malicious || samples[0].Label != workload.Benign {
		t.Fatalf("labels wrong: %v %v", samples[0].Label, samples[1].Label)
	}
	if s.Switches() == 0 {
		t.Fatalf("no context switches recorded")
	}
}

func TestQuantaShareProgress(t *testing.T) {
	s, err := New(10_000, 10_000, 2, benign.Gcc(), benign.Sjeng())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(100_000)
	a, b := s.Tasks()[0].Committed, s.Tasks()[1].Committed
	if a == 0 || b == 0 {
		t.Fatalf("a task starved: %d / %d", a, b)
	}
	if a != b {
		t.Fatalf("round robin unbalanced: %d vs %d", a, b)
	}
}

func TestFiniteStreamEnds(t *testing.T) {
	// A program whose stream ends early must be marked done and the rest
	// keep running.
	short := workload.NewLoop(workload.Info{Name: "short", Label: workload.Benign},
		nil, func(b *workload.Builder) {
			if b.Iteration() > 2 {
				return // end of stream
			}
			b.PlainN(0, 100)
		})
	s, err := New(5_000, 5_000, 3, short, benign.Bzip2())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(50_000)
	if !s.Tasks()[0].done {
		t.Fatalf("short task not marked done")
	}
	if s.Tasks()[1].Committed < 20_000 {
		t.Fatalf("survivor task starved: %d", s.Tasks()[1].Committed)
	}
}

func TestContextSwitchFlushesTLB(t *testing.T) {
	s, err := New(10_000, 10_000, 4, benign.Bzip2(), benign.Mcf())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(60_000)
	c, ok := s.M.Reg.Lookup("dtb.flushes")
	if !ok {
		t.Fatalf("missing dtb.flushes")
	}
	if c.Value() == 0 {
		t.Fatalf("context switches did not flush the TLB")
	}
}

func TestCrossProcessCacheStatePersists(t *testing.T) {
	// The shared-cache substrate must survive switches: a flush+reload
	// attacker scheduled against benign tasks still produces its flush
	// footprint (it could not if caches were wiped per switch).
	s, err := New(10_000, 10_000, 5, attacks.FlushReload(), benign.DealII())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(80_000)
	c, _ := s.M.Reg.Lookup("dcache.flush_ops")
	if c.Value() == 0 {
		t.Fatalf("attacker produced no flushes under scheduling")
	}
}
