// Package sched implements a time-multiplexing scheduler over the simulated
// machine: multiple programs (attacker and victims) share one core in
// round-robin quanta, with TLB flushes on context switch while caches,
// branch predictor, and DRAM state persist — the shared microarchitectural
// substrate cross-process attacks actually exploit, and the deployment
// setting in which a hardware detector's samples must be attributed to the
// process that was running.
package sched

import (
	"fmt"
	"math/rand"

	"perspectron/internal/isa"
	"perspectron/internal/sim"
	"perspectron/internal/stats"
	"perspectron/internal/workload"
)

// Task is one scheduled program.
type Task struct {
	Prog   workload.Program
	stream isa.Stream
	done   bool

	// Committed counts instructions this task has retired.
	Committed uint64
}

// OwnedSample is one sampling interval attributed to the task that was
// running when it fired.
type OwnedSample struct {
	Task    int
	Program string
	Label   workload.Label
	Index   int // global sample index
	Raw     []float64
}

// Scheduler multiplexes tasks on one machine.
type Scheduler struct {
	M        *sim.Machine
	Quantum  uint64 // instructions per scheduling quantum
	Interval uint64 // sampling granularity; must divide Quantum

	tasks    []*Task
	switches int
}

// New builds a scheduler over a fresh machine. quantum must be a positive
// multiple of interval so samples never straddle a context switch.
func New(quantum, interval uint64, seed int64, progs ...workload.Program) (*Scheduler, error) {
	if quantum == 0 || interval == 0 || quantum%interval != 0 {
		return nil, fmt.Errorf("sched: quantum %d must be a positive multiple of interval %d",
			quantum, interval)
	}
	if len(progs) == 0 {
		return nil, fmt.Errorf("sched: no programs")
	}
	s := &Scheduler{
		M:        sim.NewMachine(sim.DefaultConfig()),
		Quantum:  quantum,
		Interval: interval,
	}
	for i, p := range progs {
		s.tasks = append(s.tasks, &Task{
			Prog:   p,
			stream: p.Stream(rand.New(rand.NewSource(seed + int64(i)*7919))),
		})
	}
	return s, nil
}

// Tasks returns the scheduled tasks.
func (s *Scheduler) Tasks() []*Task { return s.tasks }

// Switches returns the number of context switches performed.
func (s *Scheduler) Switches() int { return s.switches }

// Run executes until totalInsts instructions have committed across all
// tasks (or every task's stream ends), returning the attributed samples.
func (s *Scheduler) Run(totalInsts uint64) []OwnedSample {
	sampler := stats.NewSampler(s.M.Reg, s.Interval)
	var out []OwnedSample
	cur := 0
	idx := 0
	s.M.Pipe.OnCommit = func(n uint64) {
		fired := sampler.Tick(n)
		for i := 0; i < fired; i++ {
			all := sampler.Samples()
			info := s.tasks[cur].Prog.Info()
			out = append(out, OwnedSample{
				Task:    cur,
				Program: info.Name,
				Label:   info.Label,
				Index:   idx,
				Raw:     all[len(all)-fired+i],
			})
			idx++
		}
	}

	var executed uint64
	for executed < totalInsts {
		t := s.tasks[cur]
		if t.done {
			if !s.advance(&cur) {
				break
			}
			continue
		}
		n := s.M.Pipe.Run(t.stream, s.Quantum)
		t.Committed += n
		executed += n
		if n < s.Quantum {
			t.done = true
		}
		if !s.advance(&cur) {
			break
		}
	}
	s.M.DRAM.FinishAt(s.M.Pipe.Cycle())
	return out
}

// advance context-switches to the next runnable task; it returns false when
// none remain. The switch flushes the TLBs (address spaces differ) but —
// deliberately — not the caches or predictors: that shared state is the
// attack surface.
func (s *Scheduler) advance(cur *int) bool {
	n := len(s.tasks)
	for step := 1; step <= n; step++ {
		next := (*cur + step) % n
		if !s.tasks[next].done {
			if next != *cur {
				s.M.ITB.Flush()
				s.M.DTB.Flush()
				s.switches++
			}
			*cur = next
			return true
		}
	}
	return false
}
