package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(4)
	if got := r.Cap(); got != 4 {
		t.Fatalf("Cap = %d, want 4", got)
	}
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot = %v, want empty", got)
	}
	for i := 1; i <= 3; i++ {
		r.Push(i)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	for i, v := range snap {
		if v.(int) != i+1 {
			t.Fatalf("snapshot[%d] = %v, want %d", i, v, i+1)
		}
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 7; i++ {
		r.Push(i)
	}
	if got := r.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	snap := r.Snapshot()
	want := []int{5, 6, 7}
	if len(snap) != len(want) {
		t.Fatalf("snapshot len = %d, want %d", len(snap), len(want))
	}
	for i, w := range want {
		if snap[i].(int) != w {
			t.Fatalf("snapshot[%d] = %v, want %d", i, snap[i], w)
		}
	}
}

func TestRingNilAndDisabled(t *testing.T) {
	var r *Ring
	r.Push("ignored")
	if r.Cap() != 0 || r.Count() != 0 || r.Snapshot() != nil {
		t.Fatal("nil ring must absorb all operations")
	}
	if NewRing(0) != nil || NewRing(-1) != nil {
		t.Fatal("non-positive capacity must return the nil (disabled) ring")
	}
}

// TestRingConcurrentPushSnapshot races writers against snapshotters; under
// -race this pins the lock-free claim, and the assertions pin that every
// observed entry is complete and in push order.
func TestRingConcurrentPushSnapshot(t *testing.T) {
	r := NewRing(8)
	const writers, perWriter = 4, 500
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			if len(snap) > 8 {
				t.Errorf("snapshot holds %d entries, cap 8", len(snap))
				return
			}
			for _, v := range snap {
				if v.(int) < 0 {
					t.Error("torn entry observed")
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Push(i)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := r.Count(); got != writers*perWriter {
		t.Fatalf("Count = %d, want %d", got, writers*perWriter)
	}
}

func TestRingHandlerJSON(t *testing.T) {
	r := NewRing(2)
	r.Push(map[string]any{"trace": "a/0/1"})
	r.Push(map[string]any{"trace": "a/0/2"})
	r.Push(map[string]any{"trace": "a/0/3"})
	rec := httptest.NewRecorder()
	RingHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/verdicts", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var snap RingSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if snap.Capacity != 2 || snap.Count != 3 || len(snap.Entries) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	first := snap.Entries[0].(map[string]any)
	if first["trace"] != "a/0/2" {
		t.Fatalf("oldest entry = %v, want a/0/2", first)
	}
}

func TestRingHandlerNilRing(t *testing.T) {
	rec := httptest.NewRecorder()
	RingHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/verdicts", nil))
	var snap RingSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if snap.Capacity != 0 || snap.Count != 0 || len(snap.Entries) != 0 {
		t.Fatalf("nil ring snapshot = %+v, want empty", snap)
	}
}

// TestLatencyBucketsPrefixFrozen pins the first twelve LatencyBuckets bounds:
// dashboards and recorded series key on these `le` labels, so the layout may
// only grow by appending.
func TestLatencyBucketsPrefixFrozen(t *testing.T) {
	frozen := []float64{1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}
	if len(LatencyBuckets) < len(frozen) {
		t.Fatalf("LatencyBuckets shrank to %d bounds; the first %d are frozen", len(LatencyBuckets), len(frozen))
	}
	for i, want := range frozen {
		if LatencyBuckets[i] != want {
			t.Fatalf("LatencyBuckets[%d] = %g, want frozen %g", i, LatencyBuckets[i], want)
		}
	}
	for i := 1; i < len(LatencyBuckets); i++ {
		if LatencyBuckets[i] <= LatencyBuckets[i-1] {
			t.Fatalf("LatencyBuckets not strictly ascending at %d: %g <= %g", i, LatencyBuckets[i], LatencyBuckets[i-1])
		}
	}
	if top := LatencyBuckets[len(LatencyBuckets)-1]; top < 30 {
		t.Fatalf("top bound %g too low for queue-wait under overload", top)
	}
}
