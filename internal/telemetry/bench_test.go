package telemetry

import (
	"context"
	"testing"
)

// BenchmarkNilCounterInc pins the disabled fast path: an Inc through a nil
// registry's nil instrument must stay a pointer check (sub-nanosecond,
// zero allocations).
func BenchmarkNilCounterInc(b *testing.B) {
	var r *Registry
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var r *Registry
	h := r.Histogram("h", ScoreBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.5)
	}
}

func BenchmarkNilStartSpan(b *testing.B) {
	var r *Registry
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := r.StartSpan(ctx, "x")
		s.End()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", ScoreBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.5)
	}
}

func BenchmarkRegistryLookupCounter(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("c").Inc()
	}
}
