package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := r.CounterValue("c_total"); got != 5 {
		t.Errorf("CounterValue = %d, want 5", got)
	}
	if got := r.CounterValue("missing"); got != 0 {
		t.Errorf("missing CounterValue = %d, want 0", got)
	}

	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	if got := r.GaugeValue("g"); got != 1.5 {
		t.Errorf("GaugeValue = %v, want 1.5", got)
	}

	h := r.Histogram("h", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 3 {
		t.Errorf("hist count = %d, want 3", h.Count())
	}
	if h.Sum() != 55.5 {
		t.Errorf("hist sum = %v, want 55.5", h.Sum())
	}
	// Same name returns the same instrument even with different bounds.
	if r.Histogram("h", []float64{7}) != h {
		t.Error("second Histogram call returned a different instrument")
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(1)
	r.Histogram("h", ScoreBuckets).Observe(0.5)
	if r.CounterValue("c") != 0 || r.GaugeValue("g") != 0 {
		t.Error("nil registry reported nonzero values")
	}
	ctx, span := r.StartSpan(context.Background(), "x")
	if span != nil {
		t.Error("nil registry returned a non-nil span")
	}
	span.End() // must not panic
	if ctx != context.Background() {
		t.Error("nil registry modified the context")
	}
	r.SetEventSink(&bytes.Buffer{})
	r.Event("e", nil)
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
	if fams := r.Families(); fams != nil {
		t.Errorf("nil Families = %v, want nil", fams)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil Snapshot not empty")
	}
}

func TestEnableDisableGlobal(t *testing.T) {
	Disable()
	t.Cleanup(Disable)
	if Get() != nil {
		t.Fatal("Get before Enable should be nil")
	}
	r := Enable()
	if r == nil || Get() != r || Enable() != r {
		t.Fatal("Enable/Get did not return a stable registry")
	}
	Disable()
	if Get() != nil {
		t.Fatal("Get after Disable should be nil")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", RatioBuckets).Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("c_total"); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.GaugeValue("g"); got != workers*per {
		t.Errorf("gauge = %v, want %d", got, workers*per)
	}
	h := r.Histogram("h", RatioBuckets)
	if h.Count() != workers*per {
		t.Errorf("hist count = %d, want %d", h.Count(), workers*per)
	}
	if h.Sum() != workers*per*0.5 {
		t.Errorf("hist sum = %v, want %v", h.Sum(), workers*per*0.5)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("requests_total", "source", "disk")).Add(3)
	r.Counter(Name("requests_total", "source", "memory")).Add(7)
	r.Gauge("coverage").Set(0.75)
	h := r.Histogram("latency_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// Families render counters first, then gauges, then histograms, each
	// kind sorted by series name.
	want := `# TYPE requests_total counter
requests_total{source="disk"} 3
requests_total{source="memory"} 7
# TYPE coverage gauge
coverage 0.75
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 5.55
latency_seconds_count 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(2)
	r.Histogram("h", []float64{1}).Observe(0.5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c_total"] != 2 {
		t.Errorf("round-tripped counter = %d, want 2", back.Counters["c_total"])
	}
	hs := back.Histograms["h"]
	if hs.Count != 1 || len(hs.Buckets) != 2 || hs.Buckets[0] != 1 {
		t.Errorf("round-tripped histogram = %+v", hs)
	}
}

func TestSpanHierarchyAndSink(t *testing.T) {
	r := NewRegistry()
	var sink bytes.Buffer
	r.SetEventSink(&sink)

	ctx, outer := r.StartSpan(context.Background(), "train")
	_, inner := r.StartSpan(ctx, "select")
	if inner.Path() != "train/select" {
		t.Errorf("inner path = %q, want train/select", inner.Path())
	}
	inner.End()
	outer.End()
	r.Event("verdict", map[string]any{"detected": true})
	r.SetEventSink(nil)
	r.Event("dropped", nil) // after detach: must not write

	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d event lines, want 3:\n%s", len(lines), sink.String())
	}
	for i, wantPhase := range []string{"train/select", "train"} {
		var ev map[string]any
		if err := json.Unmarshal([]byte(lines[i]), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if ev["event"] != "span" || ev["phase"] != wantPhase {
			t.Errorf("line %d = %v, want span %q", i, ev, wantPhase)
		}
		if _, ok := ev["seconds"].(float64); !ok {
			t.Errorf("line %d missing seconds", i)
		}
		if _, ok := ev["ts"].(string); !ok {
			t.Errorf("line %d missing ts", i)
		}
	}
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &last); err != nil {
		t.Fatal(err)
	}
	if last["event"] != "verdict" || last["detected"] != true {
		t.Errorf("last event = %v", last)
	}

	// Spans record into the phase histogram.
	if got := r.Histogram(Name(PhaseMetric, "phase", "train"), DurationBuckets).Count(); got != 1 {
		t.Errorf("train phase observations = %d, want 1", got)
	}
}

func TestNameEscaping(t *testing.T) {
	if got := Name("m"); got != "m" {
		t.Errorf("Name no labels = %q", got)
	}
	if got := Name("m", "k", "v", "k2", "v2"); got != `m{k="v",k2="v2"}` {
		t.Errorf("Name two labels = %q", got)
	}
	if got := Name("m", "k", `a"b\c`+"\n"); got != `m{k="a\"b\\c\n"}` {
		t.Errorf("Name escaped = %q", got)
	}
	family, labels := splitName(`m{k="v"}`)
	if family != "m" || labels != `k="v"` {
		t.Errorf("splitName = %q, %q", family, labels)
	}
}
