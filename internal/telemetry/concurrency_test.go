package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentRegistrationAndExposition hammers the registry with fresh
// instrument registrations from many goroutines while concurrently scraping
// /metrics and /metrics.json. Under -race this pins the locking; the
// assertions pin that scrapes are never torn (every rendered line is
// well-formed, no family interleaving) and that series within each scrape
// appear in stable canonical (sorted) order even while the instrument set is
// still growing.
func TestConcurrentRegistrationAndExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Handler()
	const writers, perWriter, scrapes = 8, 200, 40

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				reg.Counter(Name("perspectron_test_ops_total", "writer", fmt.Sprint(w), "i", fmt.Sprint(i%17))).Inc()
				reg.Gauge(Name("perspectron_test_depth", "writer", fmt.Sprint(w))).Set(float64(i))
				reg.Histogram(Name("perspectron_test_lat_seconds", "writer", fmt.Sprint(w)), LatencyBuckets).Observe(float64(i) * 1e-6)
			}
		}(w)
	}

	scrapeErrs := make(chan error, scrapes*2)
	var scrapers sync.WaitGroup
	for s := 0; s < scrapes; s++ {
		scrapers.Add(2)
		go func() {
			defer scrapers.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			if rec.Code != 200 {
				scrapeErrs <- fmt.Errorf("/metrics status %d", rec.Code)
				return
			}
			if err := checkPrometheusText(rec.Body.String()); err != nil {
				scrapeErrs <- err
			}
		}()
		go func() {
			defer scrapers.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
			if rec.Code != 200 {
				scrapeErrs <- fmt.Errorf("/metrics.json status %d", rec.Code)
				return
			}
			var snap Snapshot
			if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
				scrapeErrs <- fmt.Errorf("torn JSON snapshot: %v", err)
			}
		}()
	}
	wg.Wait()
	scrapers.Wait()
	close(scrapeErrs)
	for err := range scrapeErrs {
		t.Error(err)
	}

	// After the dust settles the full instrument set must expose every
	// series exactly once, still canonically ordered.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if err := checkPrometheusText(rec.Body.String()); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest("GET", "/metrics.json", nil))
	if err := json.Unmarshal(rec2.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if got := len(snap.Gauges); got != writers {
		t.Fatalf("gauges = %d, want %d", got, writers)
	}
	if got := len(snap.Counters); got != writers*17 {
		t.Fatalf("counters = %d, want %d", got, writers*17)
	}
	var total uint64
	for _, v := range snap.Counters {
		total += v
	}
	if total != writers*perWriter {
		t.Fatalf("counter total = %d, want %d", total, writers*perWriter)
	}
	for name, hs := range snap.Histograms {
		if hs.Count != perWriter {
			t.Fatalf("%s count = %d, want %d", name, hs.Count, perWriter)
		}
	}
}

// checkPrometheusText validates one scrape body: every line is a # TYPE
// comment or a well-formed `series value` sample, each family's # TYPE
// appears exactly once and before its samples, and non-histogram series
// within a family are sorted (the canonical-order contract).
func checkPrometheusText(body string) error {
	typed := map[string]bool{}
	var lastCounterSeries, lastGaugeSeries string
	kind := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("malformed TYPE line %q", line)
			}
			family, typ := parts[2], parts[3]
			if typed[family] {
				return fmt.Errorf("family %s typed twice (interleaved scrape)", family)
			}
			typed[family] = true
			kind[family] = typ
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("malformed sample line %q", line)
		}
		series := line[:sp]
		family, _ := splitName(series)
		// Histogram samples carry _bucket/_sum/_count suffixes on the typed
		// family name.
		family = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(family, "_bucket"), "_sum"), "_count")
		if !typed[family] {
			return fmt.Errorf("sample %q before its # TYPE line", line)
		}
		switch kind[family] {
		case "counter":
			if series < lastCounterSeries {
				return fmt.Errorf("counter series out of order: %q after %q", series, lastCounterSeries)
			}
			lastCounterSeries = series
		case "gauge":
			if series < lastGaugeSeries {
				return fmt.Errorf("gauge series out of order: %q after %q", series, lastGaugeSeries)
			}
			lastGaugeSeries = series
		}
	}
	return nil
}

// TestExpositionOrderingStable registers a fixed instrument set and asserts
// two consecutive scrapes render byte-identical modulo values — the series
// ordering is canonical, not map-iteration order.
func TestExpositionOrderingStable(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 50; i++ {
		reg.Counter(Name("perspectron_test_stable_total", "k", fmt.Sprint(i)))
	}
	order := func() []string {
		var b strings.Builder
		reg.WritePrometheus(&b)
		var names []string
		for _, line := range strings.Split(b.String(), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			names = append(names, line[:strings.LastIndexByte(line, ' ')])
		}
		return names
	}
	first := order()
	if !sort.StringsAreSorted(first) {
		t.Fatalf("series not sorted: %v", first)
	}
	for trial := 0; trial < 5; trial++ {
		again := order()
		if len(again) != len(first) {
			t.Fatalf("scrape %d changed series count", trial)
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("scrape %d reordered series at %d: %q vs %q", trial, i, first[i], again[i])
			}
		}
	}
}
