// Package telemetry is the repository's observability substrate: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms), lightweight hierarchical span tracing with an optional JSONL
// run-event sink, Prometheus-text and JSON exposition, and an HTTP endpoint
// that also mounts net/http/pprof. Every layer of the train/monitor pipeline
// records into it; docs/OBSERVABILITY.md catalogues the metric names and the
// span hierarchy.
//
// Telemetry is off by default. The process-wide registry starts nil and every
// instrument operation on a nil registry — or on the nil instrument handles a
// nil registry returns — is a single pointer check, so uninstrumented runs
// pay effectively nothing (the nil fast path is pinned by benchmarks in this
// package and on Detector.Monitor). CLIs switch it on with Enable when a
// telemetry flag is given; isolated consumers (the corpus store, tests)
// create private registries with NewRegistry.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a process- or component-scoped set of named instruments.
// All methods are safe for concurrent use, and all methods on a nil
// *Registry are no-ops returning nil instruments, whose methods are in turn
// no-ops: callers never branch on whether telemetry is enabled.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	sinkMu sync.Mutex
	sink   eventSink
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// global is the process-wide registry the pipeline instruments record into.
// It is nil until Enable — the disabled fast path.
var global atomic.Pointer[Registry]

// Enable installs (or returns the already-installed) process-wide registry.
func Enable() *Registry {
	if r := global.Load(); r != nil {
		return r
	}
	r := NewRegistry()
	if global.CompareAndSwap(nil, r) {
		return r
	}
	return global.Load()
}

// Get returns the process-wide registry, or nil when telemetry is disabled.
// All instrument methods tolerate the nil result, so call sites read
// naturally: telemetry.Get().Counter("x").Inc().
func Get() *Registry { return global.Load() }

// Disable removes the process-wide registry; subsequent Get calls return nil
// and instrumentation reverts to the zero-overhead path. Existing instrument
// handles keep working against the detached registry.
func Disable() { global.Store(nil) }

// ---- counters ---------------------------------------------------------------

// Counter is a monotonically increasing uint64. The nil Counter (returned by
// a nil Registry) absorbs all operations.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for the nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the named counter, creating it on first use. Series labels
// are part of the name, in canonical form (see Name).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// CounterValue reads the named counter without creating it; missing counters
// (and nil registries) read as 0.
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// ---- gauges -----------------------------------------------------------------

// Gauge is a float64 that can go up and down (stored as atomic bits). The
// nil Gauge absorbs all operations.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 for the nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeValue reads the named gauge without creating it.
func (r *Registry) GaugeValue(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	g := r.gauges[name]
	r.mu.Unlock()
	return g.Value()
}

// ---- histograms -------------------------------------------------------------

// Histogram counts observations into fixed cumulative-style buckets (upper
// bounds ascending, implicit +Inf last) and tracks sum and count. The nil
// Histogram absorbs all operations.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 for the nil Histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for the nil Histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (which must be ascending and are not copied; treat the slice
// as immutable) on first use. A later call with different bounds returns the
// original instrument unchanged.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Shared bucket layouts for the pipeline's recurring quantities.
var (
	// ScoreBuckets spans the normalized perceptron output in [-1, 1].
	ScoreBuckets = []float64{-1, -0.75, -0.5, -0.25, -0.1, 0, 0.1, 0.25, 0.5, 0.75, 1}
	// LatencyBuckets spans per-sample scoring latencies in seconds
	// (sub-microsecond datapath up to pathological stalls). The layout grows
	// only by appending: the first twelve bounds are frozen (pinned by
	// TestLatencyBucketsPrefixFrozen) so dashboards keyed on the historical
	// `le` labels keep working, and the appended tail covers queue-wait
	// under sustained overload, where a sample can sit for whole seconds
	// before its shard scorer reaches it.
	LatencyBuckets = []float64{1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1,
		2.5, 5, 10, 30, 60}
	// DurationBuckets spans phase wall times in seconds (1 ms to 10 min).
	DurationBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300, 600}
	// RatioBuckets spans [0, 1] quantities: error rates, coverage fractions.
	RatioBuckets = []float64{0, 0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1}
)

// ---- series naming ----------------------------------------------------------

// Name renders a metric series name with labels in canonical Prometheus
// form: Name("m", "k", "v") == `m{k="v"}`. Label values are escaped; an odd
// trailing key is ignored. Using one canonical renderer keeps series
// addressable by exact string for readers like CounterValue.
func Name(base string, kv ...string) string {
	if len(kv) < 2 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// splitName separates a canonical series name into its family and label
// body: `m{k="v"}` → ("m", `k="v"`).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// sortedKeys returns m's keys sorted, for deterministic exposition.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
