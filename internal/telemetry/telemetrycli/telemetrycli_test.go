package telemetrycli

import (
	"context"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"perspectron/internal/telemetry"
)

func TestRegisterInstallsFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := Register(fs)
	if err := fs.Parse([]string{
		"-metrics-addr", "127.0.0.1:0",
		"-trace-out", "events.jsonl",
		"-metrics-hold", "3s",
	}); err != nil {
		t.Fatal(err)
	}
	if o.Addr != "127.0.0.1:0" || o.TraceOut != "events.jsonl" || o.Hold != 3*time.Second {
		t.Fatalf("parsed options = %+v", o)
	}
}

func TestStartNoFlagsIsNoOp(t *testing.T) {
	stop, err := (&Options{}).Start()
	if err != nil {
		t.Fatal(err)
	}
	if telemetry.Get() != nil {
		t.Fatal("no-flag Start enabled the global registry")
	}
	stop()
}

func TestStartServesMetricsAndWritesTrace(t *testing.T) {
	traceOut := filepath.Join(t.TempDir(), "events.jsonl")
	o := &Options{Addr: "127.0.0.1:0", TraceOut: traceOut}
	stop, err := o.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(telemetry.Disable)

	reg := telemetry.Get()
	if reg == nil {
		t.Fatal("Start did not enable the global registry")
	}
	reg.Counter("perspectron_test_total").Inc()
	_, span := reg.StartSpan(context.Background(), "smoke")
	span.End()

	// Start only reports the bound address on stderr, so the HTTP side is
	// covered by TestStartScrapeOverHTTP; here assert the trace log received
	// the span event and that stop tears everything down cleanly.
	stop()

	b, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"phase":"smoke"`) {
		t.Fatalf("trace log missing span event:\n%s", b)
	}
}

func TestStartScrapeOverHTTP(t *testing.T) {
	// Use telemetry.Serve directly for an inspectable bound address, with
	// the same registry Start would enable.
	reg := telemetry.NewRegistry()
	reg.Counter("perspectron_scrape_total").Add(3)
	srv, addr, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "perspectron_scrape_total 3") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}
}

func TestStartBadTraceOutFails(t *testing.T) {
	o := &Options{TraceOut: filepath.Join(t.TempDir(), "missing", "events.jsonl")}
	if _, err := o.Start(); err == nil {
		t.Fatal("Start with an unwritable -trace-out succeeded")
	}
	telemetry.Disable()
}
