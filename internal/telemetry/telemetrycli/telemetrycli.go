// Package telemetrycli wires the shared telemetry flags into the command
// line tools: every CLI registers -metrics-addr, -trace-out and
// -metrics-hold through Register and brackets its work with Options.Start.
// When neither flag is given, Start is a no-op and the process keeps the
// zero-overhead nil-registry path.
package telemetrycli

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"perspectron/internal/corpus"
	"perspectron/internal/telemetry"
)

// Options holds the parsed telemetry flag values.
type Options struct {
	Addr     string
	TraceOut string
	Hold     time.Duration

	// Bound is the address the metrics server actually bound, set by Start —
	// the resolved form of Addr when ":0" asked the kernel to pick a port.
	// Commands feed it back into their health surface (SetListenAddr) so
	// /healthz self-reports where it is scraped from.
	Bound string

	// Extra routes are mounted on the metrics server next to /metrics —
	// set programmatically (not a flag) before Start; the serve subcommand
	// adds /healthz and /readyz here.
	Extra map[string]http.Handler
}

// Register installs the telemetry flags on fs and returns the value holder.
func Register(fs *flag.FlagSet) *Options {
	o := &Options{}
	fs.StringVar(&o.Addr, "metrics-addr", "",
		"serve /metrics, /metrics.json and /debug/pprof on this address (e.g. 127.0.0.1:9464)")
	fs.StringVar(&o.TraceOut, "trace-out", "",
		"append run events (span timings, verdicts) as JSON lines to this file")
	fs.DurationVar(&o.Hold, "metrics-hold", 0,
		"keep serving -metrics-addr this long after the command finishes (for scraping a short run)")
	return o
}

// Start enables the process-wide telemetry registry when any telemetry flag
// was given, points the shared corpus store's accounting at it (so corpus
// cache series appear in the exposition), opens the run-event log, and
// starts the metrics server. The returned stop function flushes and tears
// everything down — and, when -metrics-hold is set, first keeps the metrics
// endpoint alive for that duration so a scraper can read the completed run.
func (o *Options) Start() (stop func(), err error) {
	if o.Addr == "" && o.TraceOut == "" {
		return func() {}, nil
	}
	reg := telemetry.Enable()
	corpus.Default().SetRegistry(reg)

	var closers []func()
	if o.TraceOut != "" {
		f, err := os.OpenFile(o.TraceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("telemetry: opening -trace-out: %w", err)
		}
		reg.SetEventSink(f)
		closers = append(closers, func() {
			reg.SetEventSink(nil)
			f.Close()
		})
	}
	if o.Addr != "" {
		srv, addr, err := telemetry.ServeWith(o.Addr, reg, o.Extra)
		if err != nil {
			for _, c := range closers {
				c()
			}
			return nil, fmt.Errorf("telemetry: serving -metrics-addr: %w", err)
		}
		o.Bound = addr
		fmt.Fprintf(os.Stderr, "telemetry: serving metrics on http://%s/metrics\n", addr)
		closers = append(closers, func() {
			if o.Hold > 0 {
				fmt.Fprintf(os.Stderr, "telemetry: holding metrics endpoint for %s\n", o.Hold)
				time.Sleep(o.Hold)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
	}
	return func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}, nil
}
