package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"time"
)

// PhaseMetric is the histogram family every finished span records into, one
// series per hierarchical phase path: perspectron_phase_seconds{phase="..."}.
const PhaseMetric = "perspectron_phase_seconds"

// spanCtxKey carries the current span path through a context, so nested
// StartSpan calls compose hierarchical phase names ("collect/run").
type spanCtxKey struct{}

// Span measures one pipeline phase's wall time. End records the duration
// into the registry's phase histogram and, when an event sink is attached,
// appends a JSONL run event. The nil Span (returned when tracing is
// disabled) absorbs End.
type Span struct {
	reg   *Registry
	path  string
	start time.Time
}

// StartSpan opens a span named name under the process-wide registry — the
// convenience form of Registry.StartSpan.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return Get().StartSpan(ctx, name)
}

// StartSpan opens a span. The returned context carries the span's path so
// that child spans started under it render hierarchically
// ("train/select/mi"). On a nil registry the context is returned unchanged
// with a nil span.
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	path := name
	if parent, ok := ctx.Value(spanCtxKey{}).(string); ok && parent != "" {
		path = parent + "/" + name
	}
	return context.WithValue(ctx, spanCtxKey{}, path),
		&Span{reg: r, path: path, start: time.Now()}
}

// Path returns the span's hierarchical phase path ("" for the nil Span).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// End closes the span: the elapsed wall time is recorded into
// perspectron_phase_seconds{phase=<path>} and emitted to the event sink.
func (s *Span) End() {
	if s == nil {
		return
	}
	secs := time.Since(s.start).Seconds()
	s.reg.Histogram(Name(PhaseMetric, "phase", s.path), DurationBuckets).Observe(secs)
	s.reg.emit(map[string]any{"event": "span", "phase": s.path, "seconds": secs})
}

// eventSink serializes writes to the run-event log.
type eventSink struct{ w io.Writer }

// SetEventSink attaches w as the JSONL run-event log: every span end and
// Event call appends one JSON object per line. nil detaches. The registry
// serializes writes; the caller retains ownership of w (close it after
// detaching).
func (r *Registry) SetEventSink(w io.Writer) {
	if r == nil {
		return
	}
	r.sinkMu.Lock()
	r.sink = eventSink{w: w}
	r.sinkMu.Unlock()
}

// Event appends an arbitrary named run event (plus the given fields) to the
// event sink, if one is attached. Use it for one-shot run outcomes that have
// no natural metric shape — a detection verdict, a training summary.
func (r *Registry) Event(name string, fields map[string]any) {
	if r == nil {
		return
	}
	ev := map[string]any{"event": name}
	for k, v := range fields {
		ev[k] = v
	}
	r.emit(ev)
}

// emit writes one JSONL line to the sink, stamping the wall-clock time.
func (r *Registry) emit(ev map[string]any) {
	r.sinkMu.Lock()
	defer r.sinkMu.Unlock()
	if r.sink.w == nil {
		return
	}
	ev["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	r.sink.w.Write(append(line, '\n'))
}
