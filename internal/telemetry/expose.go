package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every instrument in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered: families sorted by
// name, series sorted within each family, one # TYPE line per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counterNames := sortedKeys(r.counters)
	gaugeNames := sortedKeys(r.gauges)
	histNames := sortedKeys(r.hists)
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var b strings.Builder
	lastFamily := ""
	typeLine := func(name, typ string) string {
		family, _ := splitName(name)
		if family == lastFamily {
			return ""
		}
		lastFamily = family
		return fmt.Sprintf("# TYPE %s %s\n", family, typ)
	}
	for _, name := range counterNames {
		b.WriteString(typeLine(name, "counter"))
		fmt.Fprintf(&b, "%s %d\n", name, counters[name].Value())
	}
	for _, name := range gaugeNames {
		b.WriteString(typeLine(name, "gauge"))
		fmt.Fprintf(&b, "%s %s\n", name, formatFloat(gauges[name].Value()))
	}
	for _, name := range histNames {
		b.WriteString(typeLine(name, "histogram"))
		writeHistogram(&b, name, hists[name])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative _bucket lines with
// the le label merged into any existing labels, then _sum and _count.
func writeHistogram(b *strings.Builder, name string, h *Histogram) {
	family, labels := splitName(name)
	series := func(suffix, extra string) string {
		l := labels
		if extra != "" {
			if l != "" {
				l += ","
			}
			l += extra
		}
		if l == "" {
			return family + suffix
		}
		return family + suffix + "{" + l + "}"
	}
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s %d\n", series("_bucket", `le="`+formatFloat(bound)+`"`), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s %d\n", series("_bucket", `le="+Inf"`), cum)
	fmt.Fprintf(b, "%s %s\n", series("_sum", ""), formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s %d\n", series("_count", ""), h.Count())
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot is the JSON view of a registry at one instant.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is one histogram's JSON form; bucket counts are
// non-cumulative and parallel to Bounds, with the +Inf overflow last.
type HistogramSnapshot struct {
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
}

// Snapshot captures every instrument's current value. A nil registry
// snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: h.bounds,
		}
		hs.Buckets = make([]uint64, len(h.buckets))
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Families returns the distinct metric family names present, sorted — a
// debugging and test aid.
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]bool{}
	add := func(name string) {
		family, _ := splitName(name)
		seen[family] = true
	}
	for name := range r.counters {
		add(name)
	}
	for name := range r.gauges {
		add(name)
	}
	for name := range r.hists {
		add(name)
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
