package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("perspectron_test_total").Add(9)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	code, body, hdr := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "perspectron_test_total 9") {
		t.Errorf("/metrics missing series:\n%s", body)
	}

	code, body, hdr = get(t, srv, "/metrics.json")
	if code != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("/metrics.json status %d type %q", code, hdr.Get("Content-Type"))
	}
	if !strings.Contains(body, `"perspectron_test_total": 9`) {
		t.Errorf("/metrics.json missing counter:\n%s", body)
	}

	code, body, _ = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	r := NewRegistry()
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
