package telemetry

// Ring is the registry's recent-events companion: a fixed-capacity,
// lock-free ring buffer of the last N values pushed into it. Metrics answer
// "how many, how fast" in aggregate; the ring answers "show me the last few,
// exactly" — the serving runtime keeps its most recent fully-attributed
// verdicts in one and exports them at /debug/verdicts via RingHandler, the
// flight-recorder pattern every production inference stack grows.
//
// Push is wait-free (one atomic add + one atomic pointer store), so it is
// safe on scoring hot paths; Snapshot is lock-free and sees each entry
// atomically (a concurrent Push may replace a slot between reads, but every
// value read is a complete, consistent entry, never a torn one).

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync/atomic"
)

// ringEntry pairs a pushed value with its global sequence number so
// Snapshot can restore push order without coordinating with writers.
type ringEntry struct {
	seq uint64
	v   any
}

// Ring is a fixed-capacity lock-free ring of recent values. The nil Ring
// absorbs Push and snapshots empty, mirroring the nil-instrument contract.
type Ring struct {
	slots []atomic.Pointer[ringEntry]
	seq   atomic.Uint64
}

// NewRing returns a ring holding the most recent n values; n <= 0 returns
// nil (the disabled ring).
func NewRing(n int) *Ring {
	if n <= 0 {
		return nil
	}
	return &Ring{slots: make([]atomic.Pointer[ringEntry], n)}
}

// Push appends v, overwriting the oldest entry once the ring is full.
func (r *Ring) Push(v any) {
	if r == nil {
		return
	}
	seq := r.seq.Add(1)
	r.slots[(seq-1)%uint64(len(r.slots))].Store(&ringEntry{seq: seq, v: v})
}

// Cap returns the ring's capacity (0 for the nil Ring).
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Count returns the total number of values ever pushed (not the number
// currently held, which is min(Count, Cap)).
func (r *Ring) Count() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Snapshot returns the currently held values, oldest first. Entries pushed
// concurrently with the snapshot may or may not appear; each returned value
// is a complete entry.
func (r *Ring) Snapshot() []any {
	if r == nil {
		return nil
	}
	entries := make([]*ringEntry, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	out := make([]any, len(entries))
	for i, e := range entries {
		out[i] = e.v
	}
	return out
}

// RingSnapshot is the JSON body RingHandler serves.
type RingSnapshot struct {
	// Capacity is the ring size; Count the total pushed since startup (so
	// Count - len(Entries) is how many rolled off the recorder).
	Capacity int    `json:"capacity"`
	Count    uint64 `json:"count"`
	Entries  []any  `json:"entries"`
}

// RingHandler exports a ring as a JSON debug endpoint: the held entries
// oldest-first plus capacity and total-pushed accounting. A nil ring serves
// an empty snapshot, so the route can be mounted unconditionally.
func RingHandler(r *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		snap := RingSnapshot{Capacity: r.Cap(), Count: r.Count(), Entries: r.Snapshot()}
		if snap.Entries == nil {
			snap.Entries = []any{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
}
