package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the registry's HTTP surface:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot (Snapshot)
//	/debug/pprof/  the standard net/http/pprof profiles
//
// Mounting pprof next to the metrics means a long experiments run can be
// profiled with `go tool pprof http://addr/debug/pprof/profile` without any
// extra wiring (docs/OBSERVABILITY.md).
func (r *Registry) Handler() http.Handler { return r.HandlerWith(nil) }

// HandlerWith is Handler with additional routes mounted on the same mux —
// the serving runtime mounts /healthz and /readyz next to /metrics so one
// scrape address covers liveness, readiness and metrics.
func (r *Registry) HandlerWith(extra map[string]http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range extra {
		mux.Handle(pattern, h)
	}
	return mux
}

// Serve starts an HTTP server for the registry's Handler on addr (e.g.
// ":9464"; ":0" picks a free port). It returns the running server — shut it
// down with Server.Shutdown/Close — and the bound address.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	return ServeWith(addr, r, nil)
}

// ServeWith is Serve over HandlerWith: the metrics server with extra routes
// (health endpoints) mounted.
func ServeWith(addr string, r *Registry, extra map[string]http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: r.HandlerWith(extra)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
