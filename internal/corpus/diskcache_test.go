package corpus

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"perspectron/internal/trace"
	"perspectron/internal/workload"
)

func TestSweepOrphansRemovesStaleTmpOnly(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "abc123.tmp-999")
	fresh := filepath.Join(dir, "def456.tmp-111")
	keep := filepath.Join(dir, CacheFileName("abc123"))
	for _, p := range []string{stale, fresh, keep} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * orphanTmpAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if n := SweepOrphans(dir); n != 1 {
		t.Fatalf("swept %d files, want 1", n)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived the sweep")
	}
	for _, p := range []string{fresh, keep} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("sweep removed %s: %v", p, err)
		}
	}
	// Empty dir is a no-op, not a panic.
	if SweepOrphans("") != 0 {
		t.Fatalf("empty dir swept something")
	}
}

func TestSetCacheDirSweepsOrphans(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "deadbeef.tmp-42")
	if err := os.WriteFile(stale, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * orphanTmpAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	if err := s.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("SetCacheDir did not sweep the stale temp file")
	}
}

// TestDatasetCtxCancelledSkipsCacheAndMemo: a cancelled request neither
// reads nor writes the disk cache, leaves no temp debris, and its (partial)
// result is not memoized — the next live-context request collects fresh and
// persists normally.
func TestDatasetCtxCancelledSkipsCacheAndMemo(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	if err := s.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	s.DatasetCtx(cancelled, tinyCorpus(), tinyConfig())

	key := DatasetKey(tinyCorpus(), tinyConfig())
	if _, err := os.Stat(filepath.Join(dir, CacheFileName(key))); !os.IsNotExist(err) {
		t.Fatalf("cancelled collection was persisted")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("cancelled save left temp file %s", e.Name())
		}
	}
	if len(s.Keys()) != 0 {
		t.Fatalf("cancelled collection was memoized: %v", s.Keys())
	}

	// A live request after the cancelled one collects fresh and caches.
	collections := 0
	inner := s.collect
	s.collect = func(ctx context.Context, p []workload.Program, c trace.CollectConfig) *trace.Dataset {
		collections++
		return inner(ctx, p, c)
	}
	ds := s.Dataset(tinyCorpus(), tinyConfig())
	if len(ds.Samples) == 0 || collections != 1 {
		t.Fatalf("post-cancel collection broken: %d samples, %d collections",
			len(ds.Samples), collections)
	}
	if _, err := os.Stat(filepath.Join(dir, CacheFileName(key))); err != nil {
		t.Fatalf("post-cancel collection not persisted: %v", err)
	}
}

func TestCtxReaderWriterHonorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf [8]byte
	if _, err := (ctxReader{ctx, strings.NewReader("data")}).Read(buf[:]); err == nil {
		t.Fatalf("cancelled ctxReader read succeeded")
	}
	if _, err := (ctxWriter{ctx, os.Stderr}).Write([]byte("x")); err == nil {
		t.Fatalf("cancelled ctxWriter write succeeded")
	}
}
