package corpus

import (
	"bytes"
	"strings"
	"testing"

	"perspectron/internal/telemetry"
)

func TestDiskCacheByteCounters(t *testing.T) {
	dir := t.TempDir()

	s1 := NewStore()
	if err := s1.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	s1.Dataset(tinyCorpus(), tinyConfig())
	st1 := s1.Stats()
	if st1.DiskWrittenBytes <= 0 {
		t.Fatalf("written bytes = %d, want > 0 after persisting", st1.DiskWrittenBytes)
	}
	if st1.DiskReadBytes != 0 {
		t.Fatalf("read bytes = %d, want 0 on a fresh collection", st1.DiskReadBytes)
	}

	s2 := NewStore()
	if err := s2.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	s2.Dataset(tinyCorpus(), tinyConfig())
	st2 := s2.Stats()
	if st2.DiskReadBytes != st1.DiskWrittenBytes {
		t.Fatalf("read %d bytes, want the %d bytes the first store wrote",
			st2.DiskReadBytes, st1.DiskWrittenBytes)
	}
	if st2.DiskWrittenBytes != 0 {
		t.Fatalf("written bytes = %d, want 0 on a pure disk hit", st2.DiskWrittenBytes)
	}
}

func TestSetRegistryExposesCorpusSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewStore()
	s.SetRegistry(reg)
	s.SetRegistry(nil) // ignored: the store keeps its registry

	s.Dataset(tinyCorpus(), tinyConfig())
	s.Dataset(tinyCorpus(), tinyConfig())

	// Stats reads back through the shared registry — one accounting path.
	st := s.Stats()
	if st.Collections != 1 || st.MemoryHits != 1 {
		t.Fatalf("stats = %+v, want 1 collection + 1 memory hit", st)
	}
	if got := reg.CounterValue(MetricDatasetsCollected); got != 1 {
		t.Fatalf("registry collect counter = %d, want 1", got)
	}

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, series := range []string{
		`perspectron_corpus_datasets_total{source="collect"} 1`,
		`perspectron_corpus_datasets_total{source="memory"} 1`,
	} {
		if !strings.Contains(out, series) {
			t.Errorf("exposition missing %q:\n%s", series, out)
		}
	}
}

func TestStatsStringIncludesHealth(t *testing.T) {
	s := Stats{Collections: 1, RunRetries: 2, RunsDropped: 1}
	if got := s.String(); !strings.Contains(got, "2 runs retried, 1 dropped") {
		t.Errorf("String() = %q, want health tallies", got)
	}
	clean := Stats{Collections: 1}
	if got := clean.String(); strings.Contains(got, "retried") {
		t.Errorf("clean String() mentions retries: %q", got)
	}
}
