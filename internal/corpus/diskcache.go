package corpus

import (
	"compress/gzip"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"perspectron/internal/diskfaults"
	"perspectron/internal/trace"
)

// diskFormat versions the on-disk artifact encoding; bump it when the
// Dataset shape changes so stale caches are ignored rather than misread.
const diskFormat = 1

// artifact is the on-disk envelope around a dataset. gob preserves float64
// bit patterns exactly, so a reloaded dataset is byte-identical to the
// collection that produced it.
type artifact struct {
	Format  int
	Key     string
	Dataset *trace.Dataset
}

func ensureDir(dir string) error {
	return os.MkdirAll(dir, 0o755)
}

func (s *Store) path(dir, key string) string {
	return filepath.Join(dir, key+".dataset.gob.gz")
}

// orphanTmpAge is how old a leftover temp file must be before the sweep
// removes it. Fresh temp files may belong to a concurrent writer mid-rename;
// anything this stale is debris from a crashed or killed process.
const orphanTmpAge = time.Hour

// SweepOrphans removes temp files abandoned by failed atomic writes —
// "<key>.tmp-<rand>" debris a crashed process left next to the artifacts.
// Only files older than orphanTmpAge go; a temp file younger than that may
// be a live concurrent writer's. It returns the number removed. SetCacheDir
// runs a sweep automatically; long-running services may call it
// periodically.
func SweepOrphans(dir string) int {
	if dir == "" {
		return 0
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	cutoff := time.Now().Add(-orphanTmpAge)
	removed := 0
	for _, e := range ents {
		if e.IsDir() || !strings.Contains(e.Name(), ".tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		if os.Remove(filepath.Join(dir, e.Name())) == nil {
			removed++
		}
	}
	return removed
}

// ctxReader aborts a stream read once ctx ends, so a cancelled caller is not
// held behind a slow or hung disk.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// ctxWriter is the write-side analogue of ctxReader.
type ctxWriter struct {
	ctx context.Context
	w   io.Writer
}

func (c ctxWriter) Write(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.w.Write(p)
}

// load tries the on-disk cache; a miss, a corrupt file, a key mismatch or a
// cancelled ctx all return a nil dataset (the caller then collects fresh —
// or returns promptly if its ctx is gone). On a hit, bytesRead is the
// compressed artifact size, for cache-traffic accounting.
func (s *Store) load(ctx context.Context, dir, key string) (ds *trace.Dataset, bytesRead int64) {
	if dir == "" || ctx.Err() != nil {
		return nil, 0
	}
	f, err := os.Open(s.path(dir, key))
	if err != nil {
		return nil, 0
	}
	defer f.Close()
	zr, err := gzip.NewReader(ctxReader{ctx, f})
	if err != nil {
		return nil, 0
	}
	defer zr.Close()
	var a artifact
	if err := gob.NewDecoder(zr).Decode(&a); err != nil {
		return nil, 0
	}
	if a.Format != diskFormat || a.Key != key || a.Dataset == nil {
		return nil, 0
	}
	if st, err := f.Stat(); err == nil {
		bytesRead = st.Size()
	}
	return a.Dataset, bytesRead
}

// save writes the dataset atomically (temp file + fsync + rename + directory
// fsync, matching the checkpoint path's durability discipline) so a crashed
// or concurrent writer never leaves a torn artifact behind — and a completed
// one survives power loss — returning the compressed bytes persisted.
// Failures — including a ctx cancelled mid-write or an injected disk fault
// (site "corpus") — are silent (returning 0) and leave no temp file: the
// disk cache is an accelerator, not a source of truth.
func (s *Store) save(ctx context.Context, dir, key string, ds *trace.Dataset) (bytesWritten int64) {
	if ctx.Err() != nil {
		return 0
	}
	rawTmp, err := os.CreateTemp(dir, key+".tmp-*")
	if err != nil {
		return 0
	}
	tmp := diskfaults.WrapFile(diskfaults.SiteCorpus, rawTmp)
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	zw := gzip.NewWriter(ctxWriter{ctx, tmp})
	err = gob.NewEncoder(zw).Encode(artifact{Format: diskFormat, Key: key, Dataset: ds})
	if cerr := zw.Close(); err == nil {
		err = cerr
	}
	if serr := tmp.Sync(); err == nil {
		err = serr
	}
	var size int64
	if st, serr := rawTmp.Stat(); serr == nil {
		size = st.Size()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil || ctx.Err() != nil {
		return 0
	}
	if diskfaults.Rename(diskfaults.SiteCorpus, tmp.Name(), s.path(dir, key)) != nil {
		return 0
	}
	if diskfaults.SyncDir(diskfaults.SiteCorpus, dir) != nil {
		return 0
	}
	return size
}

// CacheFileName returns the file name a key is stored under — exposed so
// tools can report or prune cache contents.
func CacheFileName(key string) string {
	return fmt.Sprintf("%s.dataset.gob.gz", key)
}
