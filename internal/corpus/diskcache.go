package corpus

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"perspectron/internal/trace"
)

// diskFormat versions the on-disk artifact encoding; bump it when the
// Dataset shape changes so stale caches are ignored rather than misread.
const diskFormat = 1

// artifact is the on-disk envelope around a dataset. gob preserves float64
// bit patterns exactly, so a reloaded dataset is byte-identical to the
// collection that produced it.
type artifact struct {
	Format  int
	Key     string
	Dataset *trace.Dataset
}

func ensureDir(dir string) error {
	return os.MkdirAll(dir, 0o755)
}

func (s *Store) path(dir, key string) string {
	return filepath.Join(dir, key+".dataset.gob.gz")
}

// load tries the on-disk cache; a miss, a corrupt file or a key mismatch
// all return a nil dataset (the caller then collects fresh). On a hit,
// bytesRead is the compressed artifact size, for cache-traffic accounting.
func (s *Store) load(dir, key string) (ds *trace.Dataset, bytesRead int64) {
	if dir == "" {
		return nil, 0
	}
	f, err := os.Open(s.path(dir, key))
	if err != nil {
		return nil, 0
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, 0
	}
	defer zr.Close()
	var a artifact
	if err := gob.NewDecoder(zr).Decode(&a); err != nil {
		return nil, 0
	}
	if a.Format != diskFormat || a.Key != key || a.Dataset == nil {
		return nil, 0
	}
	if st, err := f.Stat(); err == nil {
		bytesRead = st.Size()
	}
	return a.Dataset, bytesRead
}

// save writes the dataset atomically (temp file + rename) so a crashed or
// concurrent writer never leaves a torn artifact behind, returning the
// compressed bytes persisted. Failures are silent (returning 0): the disk
// cache is an accelerator, not a source of truth.
func (s *Store) save(dir, key string, ds *trace.Dataset) (bytesWritten int64) {
	tmp, err := os.CreateTemp(dir, key+".tmp-*")
	if err != nil {
		return 0
	}
	defer os.Remove(tmp.Name())
	zw := gzip.NewWriter(tmp)
	err = gob.NewEncoder(zw).Encode(artifact{Format: diskFormat, Key: key, Dataset: ds})
	if cerr := zw.Close(); err == nil {
		err = cerr
	}
	var size int64
	if st, serr := tmp.Stat(); serr == nil {
		size = st.Size()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0
	}
	if os.Rename(tmp.Name(), s.path(dir, key)) != nil {
		return 0
	}
	return size
}

// CacheFileName returns the file name a key is stored under — exposed so
// tools can report or prune cache contents.
func CacheFileName(key string) string {
	return fmt.Sprintf("%s.dataset.gob.gz", key)
}
