// Package corpus is the collect-once artifact engine between the simulator
// and every consumer of training data. Datasets (trace.Collect outputs) and
// Prepared bundles (dataset + encoder + feature selection) are memoized
// in-process, keyed by a content fingerprint of (workload set,
// CollectConfig); an optional on-disk cache extends the reuse across
// process invocations. Collection is deterministic for a fixed fingerprint
// (per-run seeds derive from the config seed), so a cache hit is
// byte-identical to a fresh collection — the store trades nothing but the
// simulation time.
//
// Callers share the process-wide Default store unless they need isolation
// (tests use private stores to count collections). Cached datasets are
// shared across consumers and must be treated as immutable; derive with
// Dataset.Filter rather than mutating samples in place.
package corpus

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"perspectron/internal/features"
	"perspectron/internal/sim"
	"perspectron/internal/telemetry"
	"perspectron/internal/trace"
	"perspectron/internal/workload"
)

// Prepared bundles a dataset with its encoder and feature selection — the
// shared front half of training and most experiments.
type Prepared struct {
	DS  *trace.Dataset
	Enc *trace.Encoder
	Sel features.Selection
}

// Telemetry series names the store accounts under. Everything Stats reports
// is derived from these counters — the registry is the single accounting
// path, and pointing a store at the process-wide registry (SetRegistry)
// makes the same numbers scrapable from /metrics.
const (
	MetricDatasetsCollected = `perspectron_corpus_datasets_total{source="collect"}`
	MetricDatasetsMemory    = `perspectron_corpus_datasets_total{source="memory"}`
	MetricDatasetsDisk      = `perspectron_corpus_datasets_total{source="disk"}`
	MetricPreparedComputed  = `perspectron_corpus_prepared_total{source="computed"}`
	MetricPreparedMemory    = `perspectron_corpus_prepared_total{source="memory"}`
	MetricDiskReadBytes     = "perspectron_corpus_disk_read_bytes_total"
	MetricDiskWrittenBytes  = "perspectron_corpus_disk_written_bytes_total"
	MetricRunsDropped       = "perspectron_corpus_runs_dropped_total"
	MetricRunRetries        = "perspectron_corpus_run_retries_total"
)

// Stats is a snapshot of the store's traffic: how many datasets were
// actually simulated versus served from memory or disk, the same split for
// prepared bundles (encoder + feature selection), disk-cache bytes moved,
// and the collection-health tallies (runs retried after a panic, runs
// dropped). It is read out of the store's telemetry registry — there is no
// second accounting path.
type Stats struct {
	Collections int // datasets simulated from scratch
	MemoryHits  int // datasets served from the in-process map
	DiskHits    int // datasets loaded from the on-disk cache
	Prepared    int // encoder+selection bundles computed
	PreparedHit int // bundles served from memory

	DiskReadBytes    int64 // compressed artifact bytes loaded from disk
	DiskWrittenBytes int64 // compressed artifact bytes persisted to disk
	RunsDropped      int   // collection runs abandoned (Dataset.Dropped)
	RunRetries       int   // collection run attempts that were retried
}

// Sub returns the component-wise difference s - o, for measuring the
// traffic of one span of work against a long-lived store.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Collections:      s.Collections - o.Collections,
		MemoryHits:       s.MemoryHits - o.MemoryHits,
		DiskHits:         s.DiskHits - o.DiskHits,
		Prepared:         s.Prepared - o.Prepared,
		PreparedHit:      s.PreparedHit - o.PreparedHit,
		DiskReadBytes:    s.DiskReadBytes - o.DiskReadBytes,
		DiskWrittenBytes: s.DiskWrittenBytes - o.DiskWrittenBytes,
		RunsDropped:      s.RunsDropped - o.RunsDropped,
		RunRetries:       s.RunRetries - o.RunRetries,
	}
}

// String renders the one-line cache summary the experiments CLI prints.
// Collection-health tallies are appended only when something went wrong.
func (s Stats) String() string {
	out := fmt.Sprintf("%d collected, %d reused in-process, %d loaded from disk (selections: %d computed, %d reused)",
		s.Collections, s.MemoryHits, s.DiskHits, s.Prepared, s.PreparedHit)
	if s.RunRetries > 0 || s.RunsDropped > 0 {
		out += fmt.Sprintf("; %d runs retried, %d dropped", s.RunRetries, s.RunsDropped)
	}
	return out
}

// Store is a content-addressed artifact cache. The zero value is not ready;
// use NewStore. All methods are safe for concurrent use, and concurrent
// requests for the same key collapse into one collection.
type Store struct {
	mu       sync.Mutex
	dir      string // on-disk cache directory ("" = memory only)
	datasets map[string]*trace.Dataset
	prepared map[string]*Prepared
	inflight map[string]*sync.WaitGroup
	reg      *telemetry.Registry // traffic accounting; never nil

	// collect is the collection backend, replaceable in tests. It receives
	// the caller's context so a cancelled DatasetCtx stops scheduling
	// simulation runs.
	collect func(context.Context, []workload.Program, trace.CollectConfig) *trace.Dataset
}

// NewStore returns an empty in-memory store with a private telemetry
// registry for its traffic counters.
func NewStore() *Store {
	return &Store{
		datasets: map[string]*trace.Dataset{},
		prepared: map[string]*Prepared{},
		inflight: map[string]*sync.WaitGroup{},
		reg:      telemetry.NewRegistry(),
		collect:  trace.CollectCtx,
	}
}

var defaultStore = NewStore()

// Default returns the process-wide store shared by the public Train APIs,
// the experiments, and the CLIs.
func Default() *Store { return defaultStore }

// SetCacheDir enables the on-disk cache under dir (creating it if needed);
// an empty dir disables disk caching. Entries are written after each fresh
// collection and consulted before simulating. Stale temp files from failed
// atomic writes are swept on the way in (see SweepOrphans).
func (s *Store) SetCacheDir(dir string) error {
	if dir != "" {
		if err := ensureDir(dir); err != nil {
			return err
		}
		SweepOrphans(dir)
	}
	s.mu.Lock()
	s.dir = dir
	s.mu.Unlock()
	return nil
}

// SetRegistry redirects the store's traffic accounting to reg — typically
// the process-wide registry enabled by a CLI's -metrics-addr flag, so the
// corpus series become scrapable. Counters already accumulated in the
// previous registry are not migrated; point the store before using it.
// A nil reg is ignored.
func (s *Store) SetRegistry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	s.reg = reg
	s.mu.Unlock()
}

// registry returns the store's current accounting registry. Sections that
// already hold s.mu must use s.reg directly.
func (s *Store) registry() *telemetry.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg
}

// Stats returns a snapshot of the store's traffic counters, read back from
// its telemetry registry.
func (s *Store) Stats() Stats {
	reg := s.registry()
	return Stats{
		Collections:      int(reg.CounterValue(MetricDatasetsCollected)),
		MemoryHits:       int(reg.CounterValue(MetricDatasetsMemory)),
		DiskHits:         int(reg.CounterValue(MetricDatasetsDisk)),
		Prepared:         int(reg.CounterValue(MetricPreparedComputed)),
		PreparedHit:      int(reg.CounterValue(MetricPreparedMemory)),
		DiskReadBytes:    int64(reg.CounterValue(MetricDiskReadBytes)),
		DiskWrittenBytes: int64(reg.CounterValue(MetricDiskWrittenBytes)),
		RunsDropped:      int(reg.CounterValue(MetricRunsDropped)),
		RunRetries:       int(reg.CounterValue(MetricRunRetries)),
	}
}

// featureSpaceID fingerprints the simulated machine's counter inventory
// once per process: a cached dataset is only valid for the feature space it
// was collected on, so the dataset key incorporates this.
var featureSpaceID = sync.OnceValue(func() string {
	m := sim.NewMachine(sim.DefaultConfig())
	h := sha256.New()
	for _, name := range m.Reg.Names() {
		fmt.Fprintln(h, name)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
})

// DatasetKey fingerprints a collection request: the workload identities (in
// order), every output-relevant CollectConfig field, and the machine's
// counter inventory. Workloads are identified by their Info — the generator
// name encodes every behavioural parameter (channel, bandwidth factor,
// polymorphic variant), and per-run randomness derives from cfg.Seed, so
// equal keys collect byte-identical datasets. cfg.Parallel is excluded: it
// changes scheduling, not results.
func DatasetKey(progs []workload.Program, cfg trace.CollectConfig) string {
	h := sha256.New()
	fmt.Fprintf(h, "corpus/v1 features=%s\n", featureSpaceID())
	fmt.Fprintf(h, "insts=%d interval=%d seed=%d runs=%d timeout=%s retries=%d\n",
		cfg.MaxInsts, cfg.Interval, cfg.Seed, cfg.Runs, cfg.Timeout, cfg.Retries)
	for _, p := range progs {
		i := p.Info()
		fmt.Fprintf(h, "%s|%s|%s|%d\n", i.Name, i.Category, i.Channel, i.Label)
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// Dataset returns the collected dataset for (progs, cfg), simulating it at
// most once per key: repeat requests are served from memory, then from the
// on-disk cache when one is configured. Deterministic seeding makes every
// path byte-identical.
func (s *Store) Dataset(progs []workload.Program, cfg trace.CollectConfig) *trace.Dataset {
	return s.DatasetCtx(context.Background(), progs, cfg)
}

// DatasetCtx is Dataset under a context: cancellation stops scheduling new
// simulation runs (the collection backend observes ctx) and skips disk-cache
// reads and writes. A cancelled request still returns whatever partial
// dataset the backend produced — callers that care should check ctx.Err().
func (s *Store) DatasetCtx(ctx context.Context, progs []workload.Program, cfg trace.CollectConfig) *trace.Dataset {
	key := DatasetKey(progs, cfg)
	for {
		s.mu.Lock()
		if ds, ok := s.datasets[key]; ok {
			s.reg.Counter(MetricDatasetsMemory).Inc()
			s.mu.Unlock()
			return ds
		}
		if wg, busy := s.inflight[key]; busy {
			s.mu.Unlock()
			wg.Wait() // another goroutine is collecting this key
			continue
		}
		wg := &sync.WaitGroup{}
		wg.Add(1)
		s.inflight[key] = wg
		dir := s.dir
		s.mu.Unlock()

		reg := s.registry()
		ds, readBytes := s.load(ctx, dir, key)
		fromDisk := ds != nil
		if fromDisk {
			reg.Counter(MetricDiskReadBytes).Add(uint64(readBytes))
		} else {
			ds = s.collect(ctx, progs, cfg)
			reg.Counter(MetricRunsDropped).Add(uint64(len(ds.Dropped)))
			reg.Counter(MetricRunRetries).Add(uint64(ds.Retried))
			// A cancelled collection is partial: never persist it, and keep
			// it out of the memory cache too — a later caller with a live
			// context must get a complete collection.
			if ctx.Err() != nil {
				s.mu.Lock()
				delete(s.inflight, key)
				s.mu.Unlock()
				wg.Done()
				return ds
			}
			if dir != "" && cacheable(ds, cfg) {
				written := s.save(ctx, dir, key, ds)
				reg.Counter(MetricDiskWrittenBytes).Add(uint64(written))
			}
		}
		s.mu.Lock()
		s.datasets[key] = ds
		if fromDisk {
			s.reg.Counter(MetricDatasetsDisk).Inc()
		} else {
			s.reg.Counter(MetricDatasetsCollected).Inc()
		}
		delete(s.inflight, key)
		s.mu.Unlock()
		wg.Done()
		return ds
	}
}

// cacheable reports whether a dataset may be persisted: runs dropped by
// timeouts or panics make the artifact wall-clock-dependent, so only
// complete, deterministic collections go to disk.
func cacheable(ds *trace.Dataset, cfg trace.CollectConfig) bool {
	return len(ds.Dropped) == 0 && cfg.Timeout == 0
}

// selKey fingerprints a feature-selection configuration.
func selKey(datasetKey string, selCfg features.SelectConfig) string {
	return fmt.Sprintf("%s/sel:g=%v,m=%d,mi=%v",
		datasetKey, selCfg.GroupThreshold, selCfg.MaxFeatures, selCfg.MinMI)
}

// Prepared returns the dataset for (progs, cfg) together with its trained
// encoder and the paper's feature selection under selCfg, computing each
// layer at most once: the dataset via Dataset, the encoder + selection
// memoized per (dataset, selCfg).
func (s *Store) Prepared(progs []workload.Program, cfg trace.CollectConfig, selCfg features.SelectConfig) *Prepared {
	return s.PreparedCtx(context.Background(), progs, cfg, selCfg)
}

// PreparedCtx is Prepared with the caller's context threaded through
// collection and selection, so their telemetry spans nest under the
// caller's (e.g. a train span) instead of starting a fresh trace.
func (s *Store) PreparedCtx(ctx context.Context, progs []workload.Program, cfg trace.CollectConfig, selCfg features.SelectConfig) *Prepared {
	dsKey := DatasetKey(progs, cfg)
	key := selKey(dsKey, selCfg)
	s.mu.Lock()
	if p, ok := s.prepared[key]; ok {
		s.reg.Counter(MetricPreparedMemory).Inc()
		s.mu.Unlock()
		return p
	}
	s.mu.Unlock()

	ds := s.DatasetCtx(ctx, progs, cfg)
	enc := trace.NewEncoder(ds)
	X, y := enc.Matrix(ds)
	sel := features.SelectCtx(ctx, X, y, ds.Components, selCfg)
	p := &Prepared{DS: ds, Enc: enc, Sel: sel}

	s.mu.Lock()
	if prev, ok := s.prepared[key]; ok { // concurrent preparer won
		s.mu.Unlock()
		return prev
	}
	s.prepared[key] = p
	s.reg.Counter(MetricPreparedComputed).Inc()
	s.mu.Unlock()
	return p
}

// Keys returns the dataset keys currently memoized, sorted — a debugging
// and test aid.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.datasets))
	for k := range s.datasets {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
