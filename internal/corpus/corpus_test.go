package corpus

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"perspectron/internal/features"
	"perspectron/internal/trace"
	"perspectron/internal/workload"
	"perspectron/internal/workload/attacks"
	"perspectron/internal/workload/benign"
)

func tinyCorpus() []workload.Program {
	return []workload.Program{benign.Bzip2(), attacks.FlushReload()}
}

func tinyConfig() trace.CollectConfig {
	return trace.CollectConfig{MaxInsts: 30_000, Interval: 10_000, Seed: 11, Runs: 1}
}

// identical reports whether two datasets carry bit-identical samples.
func identical(a, b *trace.Dataset) bool {
	if len(a.Samples) != len(b.Samples) || a.Interval != b.Interval ||
		len(a.FeatureNames) != len(b.FeatureNames) {
		return false
	}
	for i := range a.Samples {
		sa, sb := &a.Samples[i], &b.Samples[i]
		if sa.Program != sb.Program || sa.Run != sb.Run || sa.Index != sb.Index ||
			sa.Label != sb.Label || len(sa.Raw) != len(sb.Raw) {
			return false
		}
		for j := range sa.Raw {
			if math.Float64bits(sa.Raw[j]) != math.Float64bits(sb.Raw[j]) {
				return false
			}
		}
	}
	return true
}

func TestDatasetMemoized(t *testing.T) {
	s := NewStore()
	collections := 0
	inner := s.collect
	s.collect = func(ctx context.Context, p []workload.Program, c trace.CollectConfig) *trace.Dataset {
		collections++
		return inner(ctx, p, c)
	}
	a := s.Dataset(tinyCorpus(), tinyConfig())
	b := s.Dataset(tinyCorpus(), tinyConfig())
	if a != b {
		t.Fatalf("second request returned a different dataset pointer")
	}
	if collections != 1 {
		t.Fatalf("collections = %d, want 1", collections)
	}
	st := s.Stats()
	if st.Collections != 1 || st.MemoryHits != 1 || st.DiskHits != 0 {
		t.Fatalf("stats = %+v, want 1 collection + 1 memory hit", st)
	}
}

func TestDatasetKeySensitivity(t *testing.T) {
	base := DatasetKey(tinyCorpus(), tinyConfig())

	if k := DatasetKey(tinyCorpus(), tinyConfig()); k != base {
		t.Fatalf("key not deterministic: %s vs %s", k, base)
	}
	// Every output-relevant config field must move the key.
	mutations := map[string]func(*trace.CollectConfig){
		"MaxInsts": func(c *trace.CollectConfig) { c.MaxInsts++ },
		"Interval": func(c *trace.CollectConfig) { c.Interval = 50_000 },
		"Seed":     func(c *trace.CollectConfig) { c.Seed++ },
		"Runs":     func(c *trace.CollectConfig) { c.Runs++ },
		"Timeout":  func(c *trace.CollectConfig) { c.Timeout = 1 },
		"Retries":  func(c *trace.CollectConfig) { c.Retries = 3 },
	}
	for field, mut := range mutations {
		c := tinyConfig()
		mut(&c)
		if DatasetKey(tinyCorpus(), c) == base {
			t.Errorf("changing %s did not change the key", field)
		}
	}
	// Parallel changes scheduling, not output: same key.
	c := tinyConfig()
	c.Parallel = 7
	if DatasetKey(tinyCorpus(), c) != base {
		t.Errorf("Parallel changed the key; it must not affect results")
	}
	// Workload set and order are part of the identity.
	if DatasetKey([]workload.Program{benign.Bzip2()}, tinyConfig()) == base {
		t.Errorf("dropping a workload did not change the key")
	}
	rev := []workload.Program{attacks.FlushReload(), benign.Bzip2()}
	if DatasetKey(rev, tinyConfig()) == base {
		t.Errorf("reordering workloads did not change the key")
	}
}

func TestDiskCacheRoundTripByteIdentical(t *testing.T) {
	dir := t.TempDir()

	s1 := NewStore()
	if err := s1.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	fresh := s1.Dataset(tinyCorpus(), tinyConfig())
	key := DatasetKey(tinyCorpus(), tinyConfig())
	if _, err := os.Stat(filepath.Join(dir, CacheFileName(key))); err != nil {
		t.Fatalf("artifact not written: %v", err)
	}

	// A second store (fresh process, same cache dir) must load from disk —
	// zero collections — and serve bit-identical samples.
	s2 := NewStore()
	s2.collect = func(context.Context, []workload.Program, trace.CollectConfig) *trace.Dataset {
		t.Fatal("disk-cached dataset was re-collected")
		return nil
	}
	if err := s2.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded := s2.Dataset(tinyCorpus(), tinyConfig())
	if !identical(fresh, loaded) {
		t.Fatalf("disk round trip is not byte-identical")
	}
	st := s2.Stats()
	if st.Collections != 0 || st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want pure disk hit", st)
	}
}

func TestDiskCacheIgnoresCorruptArtifact(t *testing.T) {
	dir := t.TempDir()
	key := DatasetKey(tinyCorpus(), tinyConfig())
	if err := os.WriteFile(filepath.Join(dir, CacheFileName(key)), []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	if err := s.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	ds := s.Dataset(tinyCorpus(), tinyConfig())
	if len(ds.Samples) == 0 {
		t.Fatalf("corrupt artifact produced an empty dataset")
	}
	if st := s.Stats(); st.Collections != 1 || st.DiskHits != 0 {
		t.Fatalf("stats = %+v, want fallback collection", st)
	}
}

func TestConcurrentRequestsCollapse(t *testing.T) {
	s := NewStore()
	var mu sync.Mutex
	collections := 0
	inner := s.collect
	s.collect = func(ctx context.Context, p []workload.Program, c trace.CollectConfig) *trace.Dataset {
		mu.Lock()
		collections++
		mu.Unlock()
		return inner(ctx, p, c)
	}
	const goroutines = 8
	out := make([]*trace.Dataset, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = s.Dataset(tinyCorpus(), tinyConfig())
		}(i)
	}
	wg.Wait()
	if collections != 1 {
		t.Fatalf("concurrent requests ran %d collections, want 1", collections)
	}
	for i := 1; i < goroutines; i++ {
		if out[i] != out[0] {
			t.Fatalf("goroutine %d got a different dataset pointer", i)
		}
	}
}

func TestPreparedMemoized(t *testing.T) {
	s := NewStore()
	selCfg := features.DefaultSelectConfig()
	a := s.Prepared(tinyCorpus(), tinyConfig(), selCfg)
	b := s.Prepared(tinyCorpus(), tinyConfig(), selCfg)
	if a != b {
		t.Fatalf("prepared bundle not memoized")
	}
	if a.DS == nil || a.Enc == nil {
		t.Fatalf("incomplete bundle: %+v", a)
	}
	// A different selection budget is a different artifact over the same
	// dataset: no new collection, one new preparation.
	selCfg.MaxFeatures = 7
	c := s.Prepared(tinyCorpus(), tinyConfig(), selCfg)
	if c == a {
		t.Fatalf("different selection config returned the same bundle")
	}
	if len(c.Sel.Indices) > 7 {
		t.Fatalf("selection budget ignored: %d features", len(c.Sel.Indices))
	}
	st := s.Stats()
	if st.Collections != 1 {
		t.Fatalf("collections = %d, want 1 across all bundles", st.Collections)
	}
	if st.Prepared != 2 || st.PreparedHit != 1 {
		t.Fatalf("stats = %+v, want 2 prepared + 1 hit", st)
	}
}

func TestStatsSubAndString(t *testing.T) {
	a := Stats{Collections: 3, MemoryHits: 5, DiskHits: 1, Prepared: 2, PreparedHit: 4}
	b := Stats{Collections: 1, MemoryHits: 2, DiskHits: 1, Prepared: 1, PreparedHit: 1}
	d := a.Sub(b)
	if d != (Stats{Collections: 2, MemoryHits: 3, Prepared: 1, PreparedHit: 3}) {
		t.Fatalf("Sub = %+v", d)
	}
	if d.String() == "" {
		t.Fatalf("empty stats string")
	}
}
