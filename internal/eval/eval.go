// Package eval implements the paper's evaluation machinery: detection
// metrics, ROC/AUC construction (Fig. 5), and the 3-fold attack-holdout
// cross-validation of Table III, in which every fold removes entire attack
// categories (and their samples) from training and — following §VI-B —
// pairs test attacks with a different disclosure channel than the training
// attacks use.
package eval

import (
	"math"
	"sort"
)

// Metrics summarizes binary detection outcomes. Positive = malicious.
type Metrics struct {
	TP, FP, TN, FN int
}

// Add folds another confusion outcome in.
func (m *Metrics) Add(predictedPositive, actuallyPositive bool) {
	switch {
	case predictedPositive && actuallyPositive:
		m.TP++
	case predictedPositive && !actuallyPositive:
		m.FP++
	case !predictedPositive && actuallyPositive:
		m.FN++
	default:
		m.TN++
	}
}

// Total returns the number of scored samples.
func (m Metrics) Total() int { return m.TP + m.FP + m.TN + m.FN }

// Accuracy returns (TP+TN)/total.
func (m Metrics) Accuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(t)
}

// Precision returns TP/(TP+FP).
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall (true-positive rate) returns TP/(TP+FN).
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// FPR returns FP/(FP+TN).
func (m Metrics) FPR() float64 {
	if m.FP+m.TN == 0 {
		return 0
	}
	return float64(m.FP) / float64(m.FP+m.TN)
}

// F1 returns the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Score evaluates detection at a fixed threshold: scores[i] >= threshold
// flags sample i; y[i] > 0 marks it actually malicious.
func Score(scores, y []float64, threshold float64) Metrics {
	var m Metrics
	for i, s := range scores {
		m.Add(s >= threshold, y[i] > 0)
	}
	return m
}

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct {
	Threshold float64
	FPR, TPR  float64
}

// ROC sweeps every distinct score as a threshold and returns the curve
// ordered by increasing FPR (with the (0,0) and (1,1) endpoints).
//
// NaN scores carry no ranking information and are dropped (together with
// their labels) before the sweep — a NaN-unsafe `>` comparator is
// non-transitive, which previously made the curve order, and therefore the
// AUC, nondeterministic whenever a degraded fold emitted NaN confidences.
//
// Degenerate folds are well-defined but flat: with no negative samples every
// point has FPR 0 (AUC integrates to 0), and with no positive samples every
// point has TPR 0. Callers aggregating across folds should treat such AUCs
// as "no information", not as evidence the detector is broken.
func ROC(scores, y []float64) []ROCPoint {
	type sy struct {
		s   float64
		pos bool
	}
	all := make([]sy, 0, len(scores))
	var nPos, nNeg float64
	for i, s := range scores {
		if math.IsNaN(s) {
			continue
		}
		all = append(all, sy{s, y[i] > 0})
		if y[i] > 0 {
			nPos++
		} else {
			nNeg++
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s > all[j].s })

	points := []ROCPoint{{Threshold: math.Inf(1)}}
	var tp, fp float64
	for i := 0; i < len(all); {
		thr := all[i].s
		for i < len(all) && all[i].s == thr {
			if all[i].pos {
				tp++
			} else {
				fp++
			}
			i++
		}
		pt := ROCPoint{Threshold: thr}
		if nPos > 0 {
			pt.TPR = tp / nPos
		}
		if nNeg > 0 {
			pt.FPR = fp / nNeg
		}
		points = append(points, pt)
	}
	return points
}

// AUC integrates a ROC curve with the trapezoid rule.
func AUC(points []ROCPoint) float64 {
	var a float64
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		a += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return a
}

// MeanStd returns the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// Confidence95 returns the half-width of a 95% normal confidence band
// (1.96σ), the form the paper reports accuracies in (mean ± band).
func Confidence95(xs []float64) float64 {
	_, std := MeanStd(xs)
	return 1.96 * std
}
