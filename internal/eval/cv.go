package eval

import (
	"sort"
	"sync"

	"perspectron/internal/ml"
	"perspectron/internal/trace"
	"perspectron/internal/workload"
)

// Fold describes one cross-validation fold: the attack categories whose
// samples are entirely removed from training (Table III's D_k column), plus
// the disclosure-channel pairing rule of §VI-B — test attacks use
// TestChannel while channel-parameterizable training attacks use anything
// but TestChannel.
type Fold struct {
	TestCategories []string
	TestChannel    string
}

// TableIIIFolds reproduces the paper's three folds. CacheOut is excluded
// from every training fold (footnote 4) and appears in every test fold.
func TableIIIFolds() []Fold {
	return []Fold{
		{TestCategories: []string{"spectre_rsb", "spectre_v2", "cacheout",
			"breaking_kslr", "prime_probe"}, TestChannel: "fr"},
		{TestCategories: []string{"spectre_v1", "spectre_v2", "cacheout",
			"flush_reload"}, TestChannel: "fr"},
		{TestCategories: []string{"spectre_v2", "cacheout", "meltdown",
			"breaking_kslr", "flush_flush"}, TestChannel: "fr"},
	}
}

// FoldResult is the outcome of one fold.
type FoldResult struct {
	Metrics    Metrics
	AUC        float64
	PerCatTP   map[string]float64 // per-category true-positive rate
	FPPrograms map[string]int     // benign programs with false positives

	// Scores and Labels hold the per-test-sample classifier outputs and
	// ground truth (±1), in fold test order — ROC construction pools them.
	Scores []float64
	Labels []float64
}

// CVResult aggregates all folds.
type CVResult struct {
	Folds        []FoldResult
	MeanAccuracy float64
	Confidence   float64 // 1.96σ band
}

// Accuracies returns the per-fold accuracy list.
func (r CVResult) Accuracies() []float64 {
	out := make([]float64, len(r.Folds))
	for i, f := range r.Folds {
		out[i] = f.Metrics.Accuracy()
	}
	return out
}

// ScoredClassifier is what CrossValidate trains per fold: ml.Classifier is
// structurally satisfied by the baselines, the perceptron, and the
// replicated bank.
type ScoredClassifier = ml.Classifier

// CVConfig controls a cross-validation run.
type CVConfig struct {
	Folds []Fold
	// FeatureIdx restricts the feature space (nil = all features).
	FeatureIdx []int
	// Binary feeds the classifier k-sparse binarized inputs instead of
	// scaled ones (PerSpectron's representation).
	Binary bool
	// Threshold is the decision threshold on the classifier score.
	Threshold float64
	// Parallel runs the folds concurrently. Every fold already builds an
	// independent train/test split, normalization matrix and classifier,
	// so the per-fold results are identical to a serial run; they are
	// written into fold-order slots, keeping CVResult deterministic. The
	// mk factory must be safe to call from multiple goroutines.
	Parallel bool
}

// CrossValidate runs attack-holdout CV: per fold it splits the dataset,
// builds the normalization matrix M from training data only, fits a fresh
// classifier, and scores the held-out attacks plus a held-out benign slice
// (benign programs are split round-robin so class proportions stay roughly
// balanced, per §VII-B).
func CrossValidate(ds *trace.Dataset, mk func() ScoredClassifier, cfg CVConfig) CVResult {
	var res CVResult
	benignProgs := benignPrograms(ds)

	// A category is channel-parameterizable when the dataset contains it on
	// more than one disclosure channel; only those categories are subject
	// to the §VI-B train/test channel pairing.
	chanByCat := map[string]map[string]bool{}
	for i := range ds.Samples {
		s := &ds.Samples[i]
		if s.Label != workload.Malicious {
			continue
		}
		if chanByCat[s.Category] == nil {
			chanByCat[s.Category] = map[string]bool{}
		}
		chanByCat[s.Category][s.Channel] = true
	}
	multiChannel := func(cat string) bool { return len(chanByCat[cat]) > 1 }

	runFold := func(fi int, fold Fold) FoldResult {
		testCat := map[string]bool{}
		for _, c := range fold.TestCategories {
			testCat[c] = true
		}
		testBenign := map[string]bool{}
		for i, p := range benignProgs {
			if i%len(cfg.Folds) == fi {
				testBenign[p] = true
			}
		}

		inTest := func(s *trace.Sample) bool {
			if s.Label == workload.Malicious {
				if !testCat[s.Category] {
					return false
				}
				// Channel-parameterizable attacks are tested on the
				// fold's test channel only.
				return !multiChannel(s.Category) || s.Channel == fold.TestChannel
			}
			return testBenign[s.Program]
		}
		inTrain := func(s *trace.Sample) bool {
			if s.Label == workload.Malicious {
				if testCat[s.Category] {
					return false // remove held-out attacks entirely
				}
				// Channel pairing: channel-parameterizable training
				// attacks must not use the fold's test channel.
				return !multiChannel(s.Category) || s.Channel != fold.TestChannel
			}
			return !testBenign[s.Program]
		}

		train := ds.Filter(inTrain)
		test := ds.Filter(inTest)
		if len(train.Samples) == 0 || len(test.Samples) == 0 {
			return FoldResult{}
		}

		enc := trace.NewEncoder(train)
		encode := enc.Matrix
		if cfg.Binary {
			encode = enc.BinaryMatrix
		}
		Xtr, ytr := encode(train)
		Xte, yte := encode(test)
		if cfg.FeatureIdx != nil {
			Xtr = trace.Project(Xtr, cfg.FeatureIdx)
			Xte = trace.Project(Xte, cfg.FeatureIdx)
		}

		clf := mk()
		clf.Fit(Xtr, ytr)

		fr := FoldResult{PerCatTP: map[string]float64{}, FPPrograms: map[string]int{}}
		scores := make([]float64, len(Xte))
		catTP := map[string]int{}
		catN := map[string]int{}
		for i, x := range Xte {
			s := clf.Score(x)
			scores[i] = s
			flagged := s >= cfg.Threshold
			fr.Metrics.Add(flagged, yte[i] > 0)
			smp := &test.Samples[i]
			if yte[i] > 0 {
				catN[smp.Category]++
				if flagged {
					catTP[smp.Category]++
				}
			} else if flagged {
				fr.FPPrograms[smp.Program]++
			}
		}
		for c, n := range catN {
			fr.PerCatTP[c] = float64(catTP[c]) / float64(n)
		}
		fr.AUC = AUC(ROC(scores, yte))
		fr.Scores = scores
		fr.Labels = yte
		return fr
	}

	res.Folds = make([]FoldResult, len(cfg.Folds))
	if cfg.Parallel {
		var wg sync.WaitGroup
		for fi, fold := range cfg.Folds {
			wg.Add(1)
			go func(fi int, fold Fold) {
				defer wg.Done()
				res.Folds[fi] = runFold(fi, fold)
			}(fi, fold)
		}
		wg.Wait()
	} else {
		for fi, fold := range cfg.Folds {
			res.Folds[fi] = runFold(fi, fold)
		}
	}

	res.MeanAccuracy, _ = MeanStd(res.Accuracies())
	res.Confidence = Confidence95(res.Accuracies())
	return res
}

func benignPrograms(ds *trace.Dataset) []string {
	seen := map[string]bool{}
	var out []string
	for i := range ds.Samples {
		s := &ds.Samples[i]
		if s.Label == workload.Benign && !seen[s.Program] {
			seen[s.Program] = true
			out = append(out, s.Program)
		}
	}
	sort.Strings(out)
	return out
}

// CategoryTPRate aggregates a category's true-positive rate across folds
// that actually tested it (the §VI-B CacheOut / SpectreV2 generalization
// numbers).
func (r CVResult) CategoryTPRate(category string) (rate float64, folds int) {
	var sum float64
	for _, f := range r.Folds {
		if v, ok := f.PerCatTP[category]; ok {
			sum += v
			folds++
		}
	}
	if folds == 0 {
		return 0, 0
	}
	return sum / float64(folds), folds
}

// FalsePositivePrograms lists benign programs that produced more than
// minCount false positives in any fold (Table IV's FP row).
func (r CVResult) FalsePositivePrograms(minCount int) []string {
	agg := map[string]int{}
	for _, f := range r.Folds {
		for p, n := range f.FPPrograms {
			agg[p] += n
		}
	}
	var out []string
	for p, n := range agg {
		if n > minCount {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
