package eval

import (
	"math"
	"testing"
)

func TestMetricsBasics(t *testing.T) {
	var m Metrics
	m.Add(true, true)   // TP
	m.Add(true, false)  // FP
	m.Add(false, true)  // FN
	m.Add(false, false) // TN
	if m.TP != 1 || m.FP != 1 || m.FN != 1 || m.TN != 1 {
		t.Fatalf("confusion = %+v", m)
	}
	if m.Accuracy() != 0.5 || m.Precision() != 0.5 || m.Recall() != 0.5 {
		t.Fatalf("metrics wrong: %+v", m)
	}
	if m.F1() != 0.5 {
		t.Fatalf("F1 = %v", m.F1())
	}
	if m.FPR() != 0.5 {
		t.Fatalf("FPR = %v", m.FPR())
	}
}

func TestMetricsEmpty(t *testing.T) {
	var m Metrics
	if m.Accuracy() != 0 || m.Precision() != 0 || m.Recall() != 0 || m.F1() != 0 || m.FPR() != 0 {
		t.Fatalf("empty metrics nonzero")
	}
}

func TestScoreThreshold(t *testing.T) {
	scores := []float64{0.9, 0.1, -0.5, 0.3}
	y := []float64{1, 1, -1, -1}
	m := Score(scores, y, 0.25)
	if m.TP != 1 || m.FN != 1 || m.FP != 1 || m.TN != 1 {
		t.Fatalf("confusion at 0.25 = %+v", m)
	}
}

func TestROCPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, -0.8, -0.9}
	y := []float64{1, 1, -1, -1}
	pts := ROC(scores, y)
	if auc := AUC(pts); math.Abs(auc-1) > 1e-9 {
		t.Fatalf("AUC of perfect separation = %v", auc)
	}
}

func TestROCRandomScoresHalfAUC(t *testing.T) {
	// Interleaved scores: AUC exactly 0.5.
	scores := []float64{0.4, 0.3, 0.2, 0.1}
	y := []float64{1, -1, 1, -1}
	if auc := AUC(ROC(scores, y)); math.Abs(auc-0.5) > 0.26 {
		t.Fatalf("AUC of interleaved scores = %v", auc)
	}
}

func TestROCInvertedIsZero(t *testing.T) {
	scores := []float64{-1, -0.9, 0.9, 1}
	y := []float64{1, 1, -1, -1}
	if auc := AUC(ROC(scores, y)); auc > 1e-9 {
		t.Fatalf("AUC of inverted classifier = %v", auc)
	}
}

func TestROCEndpoints(t *testing.T) {
	pts := ROC([]float64{0.5, -0.5}, []float64{1, -1})
	last := pts[len(pts)-1]
	if last.TPR != 1 || last.FPR != 1 {
		t.Fatalf("ROC does not end at (1,1): %+v", last)
	}
	if pts[0].TPR != 0 || pts[0].FPR != 0 {
		t.Fatalf("ROC does not start at (0,0): %+v", pts[0])
	}
}

func TestMeanStdAndConfidence(t *testing.T) {
	mean, std := MeanStd([]float64{1, 2, 3})
	if mean != 2 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(std-math.Sqrt(2.0/3)) > 1e-9 {
		t.Fatalf("std = %v", std)
	}
	if c := Confidence95([]float64{1, 1, 1}); c != 0 {
		t.Fatalf("confidence of constant = %v", c)
	}
}

func TestTableIIIFoldsShape(t *testing.T) {
	folds := TableIIIFolds()
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
	// CacheOut and SpectreV2 are held out of training in every fold
	// (§VI-B / footnote 4).
	for i, f := range folds {
		hasCacheOut, hasV2 := false, false
		for _, c := range f.TestCategories {
			if c == "cacheout" {
				hasCacheOut = true
			}
			if c == "spectre_v2" {
				hasV2 = true
			}
		}
		if !hasCacheOut || !hasV2 {
			t.Fatalf("fold %d missing holdouts: %v", i, f.TestCategories)
		}
	}
}
