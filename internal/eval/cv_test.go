package eval

import (
	"testing"

	"perspectron/internal/ml"
	"perspectron/internal/stats"
	"perspectron/internal/trace"
	"perspectron/internal/workload"
)

// synthDataset builds a deterministic dataset where feature 0 perfectly
// separates the classes. Attack categories carry channels so the channel-
// pairing logic can be exercised.
func synthDataset() *trace.Dataset {
	ds := &trace.Dataset{
		FeatureNames: []string{"sig", "noise"},
		Components:   []stats.Component{stats.CompCommit, stats.CompFetch},
		Interval:     10_000,
	}
	add := func(prog, cat, ch string, label workload.Label, sig float64, n int) {
		for i := 0; i < n; i++ {
			ds.Samples = append(ds.Samples, trace.Sample{
				Program: prog, Category: cat, Channel: ch, Label: label,
				Run: 0, Index: i,
				Raw: []float64{sig, float64(i % 3)},
			})
		}
	}
	// Multi-channel attack categories.
	for _, cat := range []string{"spectre_v1", "spectre_v2", "spectre_rsb",
		"meltdown", "cacheout"} {
		add(cat+"-fr", cat, "fr", workload.Malicious, 10, 6)
		add(cat+"-pp", cat, "pp", workload.Malicious, 10, 6)
	}
	// Fixed-channel attacks.
	add("flush+reload", "flush_reload", "fr", workload.Malicious, 10, 6)
	add("flush+flush", "flush_flush", "ff", workload.Malicious, 10, 6)
	add("prime+probe", "prime_probe", "pp", workload.Malicious, 10, 6)
	add("breakingKSLR", "breaking_kslr", "fr", workload.Malicious, 10, 6)
	// Benign programs.
	for _, p := range []string{"b1", "b2", "b3", "b4", "b5", "b6"} {
		add(p, "spec_benign", "", workload.Benign, 0, 10)
	}
	return ds
}

func TestCrossValidatePerfectSeparation(t *testing.T) {
	ds := synthDataset()
	res := CrossValidate(ds, func() ScoredClassifier { return ml.NewLogReg() },
		CVConfig{Folds: TableIIIFolds(), Threshold: 0})
	if res.MeanAccuracy < 0.99 {
		t.Fatalf("accuracy %.3f on perfectly separable data", res.MeanAccuracy)
	}
	if len(res.Folds) != 3 {
		t.Fatalf("folds = %d", len(res.Folds))
	}
	for i, f := range res.Folds {
		if f.AUC < 0.99 {
			t.Fatalf("fold %d AUC = %.3f", i, f.AUC)
		}
		if len(f.Scores) != len(f.Labels) || len(f.Scores) == 0 {
			t.Fatalf("fold %d scores/labels missing", i)
		}
	}
}

func TestCrossValidateHoldsOutCategories(t *testing.T) {
	ds := synthDataset()
	// A classifier that records training categories is hard to build from
	// outside; instead verify via the fold outputs: every fold must have
	// tested its held-out categories.
	res := CrossValidate(ds, func() ScoredClassifier { return ml.NewCART() },
		CVConfig{Folds: TableIIIFolds(), Threshold: 0})
	for i, fold := range TableIIIFolds() {
		for _, cat := range fold.TestCategories {
			if _, ok := res.Folds[i].PerCatTP[cat]; !ok {
				t.Fatalf("fold %d did not test %s", i, cat)
			}
		}
	}
}

func TestChannelPairing(t *testing.T) {
	ds := synthDataset()
	// Multi-channel categories must be tested only on the fold's test
	// channel; fixed-channel ones on their native channel.
	fold := Fold{TestCategories: []string{"spectre_v1", "prime_probe"}, TestChannel: "fr"}
	res := CrossValidate(ds, func() ScoredClassifier { return ml.NewLogReg() },
		CVConfig{Folds: []Fold{fold}, Threshold: 0})
	f := res.Folds[0]
	if _, ok := f.PerCatTP["spectre_v1"]; !ok {
		t.Fatalf("multi-channel category missing from test")
	}
	if _, ok := f.PerCatTP["prime_probe"]; !ok {
		t.Fatalf("fixed-channel category dropped by channel pairing")
	}
	// Test set size: spectre_v1-fr only (6) + prime_probe (6) + benign
	// slice (2 of 6 programs * 10).
	if f.Metrics.TP+f.Metrics.FN != 12 {
		t.Fatalf("malicious test samples = %d, want 12", f.Metrics.TP+f.Metrics.FN)
	}
}

func TestCategoryTPRateAggregation(t *testing.T) {
	ds := synthDataset()
	res := CrossValidate(ds, func() ScoredClassifier { return ml.NewLogReg() },
		CVConfig{Folds: TableIIIFolds(), Threshold: 0})
	rate, folds := res.CategoryTPRate("cacheout")
	if folds != 3 {
		t.Fatalf("cacheout tested in %d folds, want 3", folds)
	}
	if rate < 0.99 {
		t.Fatalf("cacheout TP rate %.3f", rate)
	}
	if _, folds := res.CategoryTPRate("nonexistent"); folds != 0 {
		t.Fatalf("nonexistent category reported tested")
	}
}

func TestFalsePositiveProgramsThreshold(t *testing.T) {
	// An always-positive classifier flags every benign sample.
	res := CrossValidate(synthDataset(), func() ScoredClassifier {
		return constantClassifier{1}
	}, CVConfig{Folds: TableIIIFolds(), Threshold: 0})
	fps := res.FalsePositivePrograms(2)
	if len(fps) != 6 {
		t.Fatalf("FP programs = %v, want all 6 benign", fps)
	}
	if got := res.FalsePositivePrograms(1000); len(got) != 0 {
		t.Fatalf("high threshold still lists %v", got)
	}
}

type constantClassifier struct{ v float64 }

func (c constantClassifier) Name() string               { return "const" }
func (c constantClassifier) Fit([][]float64, []float64) {}
func (c constantClassifier) Score(x []float64) float64  { return c.v }

func TestAccuraciesAndConfidence(t *testing.T) {
	res := CrossValidate(synthDataset(), func() ScoredClassifier { return ml.NewLogReg() },
		CVConfig{Folds: TableIIIFolds(), Threshold: 0})
	accs := res.Accuracies()
	if len(accs) != 3 {
		t.Fatalf("accuracies = %v", accs)
	}
	if res.Confidence < 0 {
		t.Fatalf("negative confidence band")
	}
}

func TestBenignSplitRoundRobin(t *testing.T) {
	ds := synthDataset()
	// Each fold must hold out exactly 2 of the 6 benign programs.
	res := CrossValidate(ds, func() ScoredClassifier { return ml.NewLogReg() },
		CVConfig{Folds: TableIIIFolds(), Threshold: 0})
	for i, f := range res.Folds {
		benignTested := f.Metrics.TN + f.Metrics.FP
		if benignTested != 20 {
			t.Fatalf("fold %d tested %d benign samples, want 20", i, benignTested)
		}
	}
}
