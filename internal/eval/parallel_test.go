package eval

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"perspectron/internal/ml"
)

// TestROCNaNDeterministic: NaN scores used to poison the sort comparator
// (non-transitive `>`), so the curve depended on input order. With NaNs
// filtered, every permutation must yield the same curve, and that curve
// must equal the one built from the finite entries alone.
func TestROCNaNDeterministic(t *testing.T) {
	scores := []float64{0.9, math.NaN(), 0.2, 0.7, math.NaN(), 0.4, 0.1}
	y := []float64{1, 1, -1, 1, -1, -1, 1}

	var cleanS, cleanY []float64
	for i, s := range scores {
		if !math.IsNaN(s) {
			cleanS = append(cleanS, s)
			cleanY = append(cleanY, y[i])
		}
	}
	want := ROC(cleanS, cleanY)

	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		idx := r.Perm(len(scores))
		ps := make([]float64, len(scores))
		py := make([]float64, len(scores))
		for k, i := range idx {
			ps[k] = scores[i]
			py[k] = y[i]
		}
		got := ROC(ps, py)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: permuted ROC differs from NaN-free curve:\ngot  %v\nwant %v", trial, got, want)
		}
	}
	if auc := AUC(want); math.IsNaN(auc) {
		t.Fatalf("AUC is NaN after filtering")
	}
}

// TestROCDegenerateFolds pins the documented behavior for folds missing an
// entire class: no negatives → FPR stays 0 (AUC 0), no positives → TPR
// stays 0. Both curves must still be finite and deterministic.
func TestROCDegenerateFolds(t *testing.T) {
	// All positive.
	pts := ROC([]float64{0.9, 0.5, 0.1}, []float64{1, 1, 1})
	for _, p := range pts {
		if p.FPR != 0 {
			t.Fatalf("all-positive fold: FPR = %v, want 0", p.FPR)
		}
		if math.IsNaN(p.TPR) {
			t.Fatalf("all-positive fold: NaN TPR")
		}
	}
	if last := pts[len(pts)-1]; last.TPR != 1 {
		t.Fatalf("all-positive fold: final TPR = %v, want 1", last.TPR)
	}
	if auc := AUC(pts); auc != 0 {
		t.Fatalf("all-positive fold: AUC = %v, want 0", auc)
	}

	// All negative.
	pts = ROC([]float64{0.9, 0.5, 0.1}, []float64{-1, -1, -1})
	for _, p := range pts {
		if p.TPR != 0 {
			t.Fatalf("all-negative fold: TPR = %v, want 0", p.TPR)
		}
		if math.IsNaN(p.FPR) {
			t.Fatalf("all-negative fold: NaN FPR")
		}
	}
	if auc := AUC(pts); auc != 0 {
		t.Fatalf("all-negative fold: AUC = %v, want 0", auc)
	}

	// All NaN collapses to the (0,0) anchor only.
	pts = ROC([]float64{math.NaN(), math.NaN()}, []float64{1, -1})
	if len(pts) != 1 || pts[0].FPR != 0 || pts[0].TPR != 0 {
		t.Fatalf("all-NaN fold: pts = %v, want single origin point", pts)
	}
}

// TestCrossValidateParallelMatchesSerial: CVConfig.Parallel must reproduce
// the serial run exactly — same folds, same order, same scores — for both
// the scaled and binary encodings.
func TestCrossValidateParallelMatchesSerial(t *testing.T) {
	ds := synthDataset()
	for _, binary := range []bool{false, true} {
		cfg := CVConfig{Folds: TableIIIFolds(), Threshold: 0, Binary: binary}
		serial := CrossValidate(ds, func() ScoredClassifier { return ml.NewLogReg() }, cfg)
		cfg.Parallel = true
		par := CrossValidate(ds, func() ScoredClassifier { return ml.NewLogReg() }, cfg)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("binary=%v: parallel CV differs from serial:\nserial %+v\npar    %+v",
				binary, serial, par)
		}
	}
}
