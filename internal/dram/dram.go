// Package dram models the main-memory controller: read/write queues with
// write-queue servicing of reads, per-bank row buffers with activate
// accounting, bus turnaround tracking, and a DRAM power-state machine with
// per-state energy counters.
//
// The paper's §VII-C feature interpretation singles out mem_ctrls counters
// as invariant attack footprints: bytesReadWrQ (reads serviced by the write
// queue), bytesPerActivate, wrPerTurnAround and selfRefreshEnergy; this
// model computes all of them from the access stream.
package dram

import "perspectron/internal/stats"

// Config sizes the controller.
type Config struct {
	Banks       int
	RowBytes    int
	LineBytes   int
	ReadQDepth  int
	WriteQDepth int
	RowHitLat   uint64 // CAS-only access, CPU cycles
	RowMissLat  uint64 // precharge+activate+CAS
	WriteDrain  uint64 // cycles a write lingers in the write queue
	IdleToPD    uint64 // idle cycles before power-down
	PDToSREF    uint64 // power-down cycles before self-refresh
}

// DefaultConfig is a DDR3-1600-like device behind a 2 GHz core.
func DefaultConfig() Config {
	return Config{
		Banks:       8,
		RowBytes:    8192,
		LineBytes:   64,
		ReadQDepth:  32,
		WriteQDepth: 64,
		RowHitLat:   28,
		RowMissLat:  76,
		WriteDrain:  400,
		IdleToPD:    200,
		PDToSREF:    4000,
	}
}

// Counters groups the mem_ctrls statistics.
type Counters struct {
	ReadReqs      *stats.Counter
	WriteReqs     *stats.Counter
	ReadBursts    *stats.Counter
	WriteBursts   *stats.Counter
	BytesReadDRAM *stats.Counter
	BytesWritten  *stats.Counter
	BytesReadWrQ  *stats.Counter // reads serviced by the write queue
	ServicedByWrQ *stats.Counter

	RowHits     *stats.Counter
	RowMisses   *stats.Counter
	Activations *stats.Counter
	BytesPerAct *stats.Counter // sum of bytes accessed per activation
	Precharges  *stats.Counter

	WrPerTurnAround *stats.Counter
	RdPerTurnAround *stats.Counter
	BusTurnarounds  *stats.Counter

	TotQLat      *stats.Counter
	TotMemAccLat *stats.Counter
	AvgRdQLen    *stats.Counter
	AvgWrQLen    *stats.Counter

	ActEnergy       *stats.Counter
	PreEnergy       *stats.Counter
	ReadEnergy      *stats.Counter
	WriteEnergy     *stats.Counter
	RefreshEnergy   *stats.Counter
	ActBackEnergy   *stats.Counter
	PreBackEnergy   *stats.Counter
	ActPowerDownE   *stats.Counter
	PrePowerDownE   *stats.Counter
	SelfRefreshE    *stats.Counter
	TotalEnergy     *stats.Counter
	TimeIdle        *stats.Counter
	TimeActive      *stats.Counter
	TimePowerDown   *stats.Counter
	TimeSelfRefresh *stats.Counter

	PerBankRd      []*stats.Counter
	PerBankWr      []*stats.Counter
	PerBankRowHit  []*stats.Counter
	PerBankRowMiss []*stats.Counter
	PerBankAct     []*stats.Counter

	RdQLenPdf      []*stats.Counter // read queue length distribution
	WrQLenPdf      []*stats.Counter // write queue length distribution
	BytesPerActPdf []*stats.Counter // bytes-per-activate distribution
}

func newCounters(reg *stats.Registry, banks int) Counters {
	mk := func(name, desc string) *stats.Counter {
		return reg.NewRaw(stats.CompMemCtrl, "mem_ctrls."+name, desc)
	}
	c := Counters{
		ReadReqs:      mk("readReqs", "read requests"),
		WriteReqs:     mk("writeReqs", "write requests"),
		ReadBursts:    mk("readBursts", "read bursts"),
		WriteBursts:   mk("writeBursts", "write bursts"),
		BytesReadDRAM: mk("bytesReadDRAM", "bytes read from DRAM"),
		BytesWritten:  mk("bytesWritten", "bytes written to DRAM"),
		BytesReadWrQ:  mk("bytesReadWrQ", "read bytes serviced by the write queue"),
		ServicedByWrQ: mk("servicedByWrQ", "reads serviced by the write queue"),

		RowHits:     mk("readRowHits", "row buffer hits"),
		RowMisses:   mk("readRowMisses", "row buffer misses"),
		Activations: mk("rank0.actCount", "row activations"),
		BytesPerAct: mk("bytesPerActivate", "bytes accessed per row activation (sum)"),
		Precharges:  mk("rank0.preCount", "precharges"),

		WrPerTurnAround: mk("wrPerTurnAround", "writes before turning the bus around"),
		RdPerTurnAround: mk("rdPerTurnAround", "reads before turning the bus around"),
		BusTurnarounds:  mk("busTurnarounds", "bus direction switches"),

		TotQLat:      mk("totQLat", "total queueing latency"),
		TotMemAccLat: mk("totMemAccLat", "total memory access latency"),
		AvgRdQLen:    mk("rdQLenSum", "read queue length sum"),
		AvgWrQLen:    mk("wrQLenSum", "write queue length sum"),

		ActEnergy:       mk("rank0.actEnergy", "activate energy"),
		PreEnergy:       mk("rank0.preEnergy", "precharge energy"),
		ReadEnergy:      mk("rank0.readEnergy", "read burst energy"),
		WriteEnergy:     mk("rank0.writeEnergy", "write burst energy"),
		RefreshEnergy:   mk("rank0.refreshEnergy", "refresh energy"),
		ActBackEnergy:   mk("rank0.actBackEnergy", "active background energy"),
		PreBackEnergy:   mk("rank0.preBackEnergy", "precharge background energy"),
		ActPowerDownE:   mk("rank0.actPowerDownEnergy", "active power-down energy"),
		PrePowerDownE:   mk("rank0.prePowerDownEnergy", "precharge power-down energy"),
		SelfRefreshE:    mk("selfRefreshEnergy", "self-refresh energy"),
		TotalEnergy:     mk("rank0.totalEnergy", "total DRAM energy"),
		TimeIdle:        mk("memoryStateTime::IDLE", "cycles in idle state"),
		TimeActive:      mk("memoryStateTime::ACT", "cycles in active state"),
		TimePowerDown:   mk("memoryStateTime::PDN", "cycles in power-down"),
		TimeSelfRefresh: mk("memoryStateTime::SREF", "cycles in self-refresh"),
	}
	for b := 0; b < banks; b++ {
		c.PerBankRd = append(c.PerBankRd, reg.NewRaw(stats.CompMemCtrl,
			"mem_ctrls.perBankRdBursts"+itoa(b), "per-bank read bursts"))
		c.PerBankWr = append(c.PerBankWr, reg.NewRaw(stats.CompMemCtrl,
			"mem_ctrls.perBankWrBursts"+itoa(b), "per-bank write bursts"))
		c.PerBankRowHit = append(c.PerBankRowHit, reg.NewRaw(stats.CompMemCtrl,
			"mem_ctrls.bank"+itoa(b)+".rowHits", "per-bank row buffer hits"))
		c.PerBankRowMiss = append(c.PerBankRowMiss, reg.NewRaw(stats.CompMemCtrl,
			"mem_ctrls.bank"+itoa(b)+".rowMisses", "per-bank row buffer misses"))
		c.PerBankAct = append(c.PerBankAct, reg.NewRaw(stats.CompMemCtrl,
			"mem_ctrls.bank"+itoa(b)+".actCount", "per-bank activations"))
	}
	for i := 0; i < 32; i++ {
		c.RdQLenPdf = append(c.RdQLenPdf, reg.NewRaw(stats.CompMemCtrl,
			"mem_ctrls.rdQLenPdf::"+itoa(i), "read queue length PDF bucket"))
	}
	for i := 0; i < 64; i++ {
		c.WrQLenPdf = append(c.WrQLenPdf, reg.NewRaw(stats.CompMemCtrl,
			"mem_ctrls.wrQLenPdf::"+itoa(i), "write queue length PDF bucket"))
	}
	for i := 0; i < 12; i++ {
		c.BytesPerActPdf = append(c.BytesPerActPdf, reg.NewRaw(stats.CompMemCtrl,
			"mem_ctrls.bytesPerActivate::"+itoa(i), "bytes per activate PDF bucket"))
	}
	return c
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

type pendingWrite struct {
	line  uint64
	ready uint64 // cycle at which the write drains to the array
}

// Controller is the memory controller. It implements cache.Memory.
type Controller struct {
	cfg Config
	C   Counters

	openRow       []int64 // per bank; -1 = closed
	bytesSinceAct []uint64

	writeQ []pendingWrite
	rdQLen int // modelled read-queue occupancy

	lastDir       int // 0 none, 1 read, 2 write
	runLen        int
	lastBusy      uint64 // cycle the device last finished work
	lastAccounted uint64
}

// New constructs a controller and registers its counters.
func New(cfg Config, reg *stats.Registry) *Controller {
	c := &Controller{
		cfg:           cfg,
		C:             newCounters(reg, cfg.Banks),
		openRow:       make([]int64, cfg.Banks),
		bytesSinceAct: make([]uint64, cfg.Banks),
	}
	for i := range c.openRow {
		c.openRow[i] = -1
	}
	return c
}

func (c *Controller) bank(addr uint64) int {
	return int((addr / uint64(c.cfg.LineBytes)) % uint64(c.cfg.Banks))
}

func (c *Controller) row(addr uint64) int64 {
	return int64(addr / uint64(c.cfg.RowBytes))
}

// Access services a read or write of one cache line at cycle and returns the
// latency in CPU cycles.
func (c *Controller) Access(addr uint64, write bool, cycle uint64) uint64 {
	c.accountBackground(cycle)
	c.drainWrites(cycle)

	lb := uint64(c.cfg.LineBytes)
	line := addr / lb

	c.C.WrQLenPdf[minInt(len(c.writeQ), len(c.C.WrQLenPdf)-1)].Inc()
	c.C.RdQLenPdf[minInt(c.rdQLen, len(c.C.RdQLenPdf)-1)].Inc()

	if write {
		c.C.WriteReqs.Inc()
		c.C.WriteBursts.Inc()
		c.C.BytesWritten.Add(float64(lb))
		c.C.PerBankWr[c.bank(addr)].Inc()
		c.turnaround(2)
		// Writes complete into the write queue; the array update is
		// deferred.
		if len(c.writeQ) < c.cfg.WriteQDepth {
			c.writeQ = append(c.writeQ, pendingWrite{line: line, ready: cycle + c.cfg.WriteDrain})
			c.C.AvgWrQLen.Add(float64(len(c.writeQ)))
			c.C.WriteEnergy.Add(4)
			c.C.TotalEnergy.Add(4)
			c.busyUntil(cycle + 4)
			return 4 // posted write
		}
		// Queue full: pay a full array access.
		lat := c.arrayAccess(addr, cycle, true)
		c.busyUntil(cycle + lat)
		return lat
	}

	c.C.ReadReqs.Inc()
	c.C.ReadBursts.Inc()
	c.C.PerBankRd[c.bank(addr)].Inc()
	if c.rdQLen < c.cfg.ReadQDepth {
		c.rdQLen++
	}
	c.turnaround(1)

	// Read hit in the write queue: forwarded without touching the array.
	for _, w := range c.writeQ {
		if w.line == line {
			c.C.ServicedByWrQ.Inc()
			c.C.BytesReadWrQ.Add(float64(lb))
			c.busyUntil(cycle + 6)
			return 6
		}
	}

	c.C.BytesReadDRAM.Add(float64(lb))
	lat := c.arrayAccess(addr, cycle, false)
	c.C.TotMemAccLat.Add(float64(lat))
	c.busyUntil(cycle + lat)
	return lat
}

// arrayAccess touches the row buffer of addr's bank.
func (c *Controller) arrayAccess(addr uint64, cycle uint64, write bool) uint64 {
	b := c.bank(addr)
	r := c.row(addr)
	lb := uint64(c.cfg.LineBytes)
	if c.openRow[b] == r {
		c.C.RowHits.Inc()
		c.C.PerBankRowHit[b].Inc()
		c.bytesSinceAct[b] += lb
		c.C.ReadEnergy.Add(2)
		c.C.TotalEnergy.Add(2)
		return c.cfg.RowHitLat
	}
	c.C.RowMisses.Inc()
	c.C.PerBankRowMiss[b].Inc()
	if c.openRow[b] != -1 {
		c.C.Precharges.Inc()
		c.C.PreEnergy.Add(3)
		c.C.TotalEnergy.Add(3)
	}
	// New activation: account bytes served by the previous activation.
	if c.bytesSinceAct[b] > 0 {
		c.C.BytesPerAct.Add(float64(c.bytesSinceAct[b]))
		bkt := 0
		for v := c.bytesSinceAct[b] / 64; v > 0 && bkt < len(c.C.BytesPerActPdf)-1; v >>= 1 {
			bkt++
		}
		c.C.BytesPerActPdf[bkt].Inc()
	}
	c.openRow[b] = r
	c.bytesSinceAct[b] = lb
	c.C.Activations.Inc()
	c.C.PerBankAct[b].Inc()
	c.C.ActEnergy.Add(8)
	c.C.ReadEnergy.Add(2)
	c.C.TotalEnergy.Add(10)
	return c.cfg.RowMissLat
}

// turnaround tracks bus direction switches and the run lengths the paper's
// wrPerTurnAround / rdPerTurnAround features measure.
func (c *Controller) turnaround(dir int) {
	if c.lastDir == dir {
		c.runLen++
		return
	}
	if c.lastDir == 1 {
		c.C.RdPerTurnAround.Add(float64(c.runLen))
		c.C.BusTurnarounds.Inc()
	} else if c.lastDir == 2 {
		c.C.WrPerTurnAround.Add(float64(c.runLen))
		c.C.BusTurnarounds.Inc()
	}
	c.lastDir = dir
	c.runLen = 1
}

// drainWrites retires writes whose drain window elapsed.
func (c *Controller) drainWrites(cycle uint64) {
	live := c.writeQ[:0]
	for _, w := range c.writeQ {
		if w.ready > cycle {
			live = append(live, w)
		} else {
			c.C.WriteEnergy.Add(2)
			c.C.TotalEnergy.Add(2)
		}
	}
	c.writeQ = live
}

func (c *Controller) busyUntil(cycle uint64) {
	if cycle > c.lastBusy {
		c.lastBusy = cycle
	}
	if c.lastBusy > c.lastAccounted {
		// Time while servicing is active time.
		c.C.TimeActive.Add(float64(c.lastBusy - c.lastAccounted))
		c.C.ActBackEnergy.Add(float64(c.lastBusy-c.lastAccounted) * 0.5)
		c.C.TotalEnergy.Add(float64(c.lastBusy-c.lastAccounted) * 0.5)
		c.lastAccounted = c.lastBusy
	}
}

// accountBackground distributes the gap since the device last worked across
// the power states: IDLE for the first IdleToPD cycles, power-down until
// PDToSREF, then self-refresh. Long memory-quiet stretches therefore show up
// in selfRefreshEnergy.
func (c *Controller) accountBackground(cycle uint64) {
	if cycle <= c.lastAccounted {
		return
	}
	gap := cycle - c.lastAccounted
	// Reads drain from the modelled read queue at roughly one per
	// row-hit service time.
	drained := int(gap / c.cfg.RowHitLat)
	if drained >= c.rdQLen {
		c.rdQLen = 0
	} else {
		c.rdQLen -= drained
	}
	idle := min64(gap, c.cfg.IdleToPD)
	c.C.TimeIdle.Add(float64(idle))
	c.C.PreBackEnergy.Add(float64(idle) * 0.3)
	gap -= idle
	if gap > 0 {
		pd := min64(gap, c.cfg.PDToSREF)
		c.C.TimePowerDown.Add(float64(pd))
		c.C.PrePowerDownE.Add(float64(pd) * 0.1)
		gap -= pd
		if gap > 0 {
			c.C.TimeSelfRefresh.Add(float64(gap))
			c.C.SelfRefreshE.Add(float64(gap) * 0.05)
			c.C.RefreshEnergy.Add(float64(gap) * 0.02)
		}
	}
	c.C.TotalEnergy.Add(float64(cycle-c.lastAccounted) * 0.05)
	c.lastAccounted = cycle
}

// FinishAt closes background accounting at the end of a run.
func (c *Controller) FinishAt(cycle uint64) { c.accountBackground(cycle) }

// WriteQLen returns current write-queue occupancy (for tests).
func (c *Controller) WriteQLen() int { return len(c.writeQ) }

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
