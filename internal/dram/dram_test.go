package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"perspectron/internal/stats"
)

func newCtl(t *testing.T) *Controller {
	t.Helper()
	reg := stats.NewRegistry()
	c := New(DefaultConfig(), reg)
	reg.Seal()
	return c
}

func TestRowBufferHitFasterThanMiss(t *testing.T) {
	c := newCtl(t)
	missLat := c.Access(0x0, false, 0)
	hitLat := c.Access(0x40*uint64(DefaultConfig().Banks), false, 100) // same bank 0, same row
	if hitLat >= missLat {
		t.Fatalf("row hit (%d) not faster than miss (%d)", hitLat, missLat)
	}
	if c.C.RowHits.Value() != 1 || c.C.RowMisses.Value() != 1 {
		t.Fatalf("rowHits=%v rowMisses=%v", c.C.RowHits.Value(), c.C.RowMisses.Value())
	}
}

func TestWriteIsPosted(t *testing.T) {
	c := newCtl(t)
	lat := c.Access(0x1000, true, 0)
	if lat > 10 {
		t.Fatalf("posted write latency = %d", lat)
	}
	if c.WriteQLen() != 1 {
		t.Fatalf("write queue length = %d", c.WriteQLen())
	}
}

func TestReadServicedByWriteQueue(t *testing.T) {
	c := newCtl(t)
	c.Access(0x2000, true, 0)
	lat := c.Access(0x2000, false, 10) // same line while write pending
	if lat > 10 {
		t.Fatalf("write-queue forward latency = %d", lat)
	}
	if c.C.ServicedByWrQ.Value() != 1 || c.C.BytesReadWrQ.Value() != 64 {
		t.Fatalf("servicedByWrQ=%v bytesReadWrQ=%v",
			c.C.ServicedByWrQ.Value(), c.C.BytesReadWrQ.Value())
	}
}

func TestWriteQueueDrains(t *testing.T) {
	c := newCtl(t)
	c.Access(0x2000, true, 0)
	c.Access(0x9000, false, DefaultConfig().WriteDrain+100)
	if c.WriteQLen() != 0 {
		t.Fatalf("write queue did not drain: %d", c.WriteQLen())
	}
}

func TestWriteQueueFullPaysArrayAccess(t *testing.T) {
	reg := stats.NewRegistry()
	cfg := DefaultConfig()
	cfg.WriteQDepth = 2
	c := New(cfg, reg)
	reg.Seal()
	c.Access(0x0000, true, 0)
	c.Access(0x4000, true, 0)
	lat := c.Access(0x8000, true, 0) // queue full
	if lat < cfg.RowHitLat {
		t.Fatalf("full-queue write latency = %d, want an array access", lat)
	}
}

func TestTurnaroundAccounting(t *testing.T) {
	c := newCtl(t)
	// 3 writes then a read: wrPerTurnAround should record 3.
	c.Access(0x0000, true, 0)
	c.Access(0x4000, true, 0)
	c.Access(0x8000, true, 0)
	c.Access(0xc000, false, 0)
	if c.C.WrPerTurnAround.Value() != 3 {
		t.Fatalf("wrPerTurnAround = %v, want 3", c.C.WrPerTurnAround.Value())
	}
	if c.C.BusTurnarounds.Value() != 1 {
		t.Fatalf("turnarounds = %v", c.C.BusTurnarounds.Value())
	}
	// 2 reads then a write: rdPerTurnAround records 3 (the first read above
	// plus these two).
	c.Access(0x10000, false, 0)
	c.Access(0x14000, false, 0)
	c.Access(0x18000, true, 0)
	if c.C.RdPerTurnAround.Value() != 3 {
		t.Fatalf("rdPerTurnAround = %v, want 3", c.C.RdPerTurnAround.Value())
	}
}

func TestBytesPerActivate(t *testing.T) {
	c := newCtl(t)
	banks := uint64(DefaultConfig().Banks)
	// Three accesses in the same row of bank 0, then a different row of
	// bank 0 forces re-activation, accounting 3*64 bytes.
	c.Access(0x0, false, 0)
	c.Access(0x40*banks, false, 0)
	c.Access(0x80*banks, false, 0)
	c.Access(uint64(DefaultConfig().RowBytes)*banks, false, 0)
	if c.C.BytesPerAct.Value() != 192 {
		t.Fatalf("bytesPerActivate = %v, want 192", c.C.BytesPerAct.Value())
	}
	if c.C.Activations.Value() != 2 {
		t.Fatalf("activations = %v", c.C.Activations.Value())
	}
}

func TestPowerStateProgression(t *testing.T) {
	c := newCtl(t)
	cfg := DefaultConfig()
	c.Access(0x0, false, 0)
	// A long quiet gap must traverse IDLE -> PDN -> SREF.
	c.Access(0x4000, false, cfg.IdleToPD+cfg.PDToSREF+100000)
	if c.C.TimeIdle.Value() == 0 {
		t.Fatalf("no idle time accounted")
	}
	if c.C.TimePowerDown.Value() == 0 {
		t.Fatalf("no power-down time accounted")
	}
	if c.C.TimeSelfRefresh.Value() == 0 || c.C.SelfRefreshE.Value() == 0 {
		t.Fatalf("no self-refresh accounted")
	}
}

func TestBusyStreamNoSelfRefresh(t *testing.T) {
	c := newCtl(t)
	cycle := uint64(0)
	for i := 0; i < 200; i++ {
		cycle += c.Access(uint64(i)*64, false, cycle)
	}
	if c.C.SelfRefreshE.Value() != 0 {
		t.Fatalf("busy stream accrued self-refresh energy %v", c.C.SelfRefreshE.Value())
	}
	if c.C.TimeActive.Value() == 0 {
		t.Fatalf("busy stream accrued no active time")
	}
}

func TestFinishAt(t *testing.T) {
	c := newCtl(t)
	c.Access(0x0, false, 0)
	c.FinishAt(1_000_000)
	if c.C.TimeSelfRefresh.Value() == 0 {
		t.Fatalf("FinishAt did not account trailing background time")
	}
}

func TestPerBankCounters(t *testing.T) {
	c := newCtl(t)
	c.Access(0x0, false, 0)  // bank 0
	c.Access(0x40, false, 0) // bank 1
	c.Access(0x40, true, 0)  // bank 1 write
	if c.C.PerBankRd[0].Value() != 1 || c.C.PerBankRd[1].Value() != 1 {
		t.Fatalf("per-bank reads: %v %v", c.C.PerBankRd[0].Value(), c.C.PerBankRd[1].Value())
	}
	if c.C.PerBankWr[1].Value() != 1 {
		t.Fatalf("per-bank writes: %v", c.C.PerBankWr[1].Value())
	}
}

// Property: accounting conservation — reads either hit the write queue or
// read DRAM; total bytes match request counts.
func TestQuickReadByteConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		reg := stats.NewRegistry()
		c := New(DefaultConfig(), reg)
		reg.Seal()
		var cycle uint64
		reads := 0
		for _, op := range ops {
			addr := uint64(op&0xfff) << 6
			write := op&0x1000 != 0
			if !write {
				reads++
			}
			cycle += c.Access(addr, write, cycle)
		}
		gotBytes := c.C.BytesReadDRAM.Value() + c.C.BytesReadWrQ.Value()
		return gotBytes == float64(reads*64) &&
			c.C.ReadReqs.Value() == float64(reads)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// Property: state-time accounting covers every cycle gap exactly once (sum
// of state times equals total accounted background time).
func TestQuickStateTimeCoversGaps(t *testing.T) {
	f := func(gaps []uint16) bool {
		reg := stats.NewRegistry()
		c := New(DefaultConfig(), reg)
		reg.Seal()
		var cycle uint64
		for _, g := range gaps {
			cycle += uint64(g)
			c.Access(0x0, false, cycle)
			cycle += 100 // leave room past the service time
		}
		total := c.C.TimeIdle.Value() + c.C.TimePowerDown.Value() +
			c.C.TimeSelfRefresh.Value() + c.C.TimeActive.Value()
		return total <= float64(cycle)+200
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}
