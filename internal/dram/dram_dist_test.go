package dram

import (
	"testing"

	"perspectron/internal/stats"
)

func TestQueueLengthPDFsPopulate(t *testing.T) {
	reg := stats.NewRegistry()
	c := New(DefaultConfig(), reg)
	reg.Seal()
	var cycle uint64
	for i := 0; i < 200; i++ {
		write := i%3 == 0
		cycle += c.Access(uint64(i)*64, write, cycle)
	}
	var rd, wr float64
	for _, b := range c.C.RdQLenPdf {
		rd += b.Value()
	}
	for _, b := range c.C.WrQLenPdf {
		wr += b.Value()
	}
	// Every access records both PDFs once.
	if rd != 200 || wr != 200 {
		t.Fatalf("PDF mass rd=%v wr=%v, want 200 each", rd, wr)
	}
}

func TestBytesPerActivatePDFPopulates(t *testing.T) {
	reg := stats.NewRegistry()
	c := New(DefaultConfig(), reg)
	reg.Seal()
	banks := uint64(DefaultConfig().Banks)
	// Several same-row accesses, then a row change to flush the histogram.
	for i := uint64(0); i < 8; i++ {
		c.Access(i*64*banks, false, 0)
	}
	c.Access(uint64(DefaultConfig().RowBytes)*banks, false, 0)
	var mass float64
	for _, b := range c.C.BytesPerActPdf {
		mass += b.Value()
	}
	if mass == 0 {
		t.Fatalf("bytesPerActivate PDF never updated")
	}
}

func TestPerBankRowStats(t *testing.T) {
	reg := stats.NewRegistry()
	c := New(DefaultConfig(), reg)
	reg.Seal()
	c.Access(0, false, 0)    // bank 0 row miss (activation)
	c.Access(0x40, false, 0) // bank 1 row miss
	banks := uint64(DefaultConfig().Banks)
	c.Access(64*banks, false, 0) // bank 0 row hit
	if c.C.PerBankRowMiss[0].Value() != 1 || c.C.PerBankRowMiss[1].Value() != 1 {
		t.Fatalf("per-bank row misses: %v/%v",
			c.C.PerBankRowMiss[0].Value(), c.C.PerBankRowMiss[1].Value())
	}
	if c.C.PerBankRowHit[0].Value() != 1 {
		t.Fatalf("per-bank row hits: %v", c.C.PerBankRowHit[0].Value())
	}
	if c.C.PerBankAct[0].Value() != 1 {
		t.Fatalf("per-bank activations: %v", c.C.PerBankAct[0].Value())
	}
}

func TestReadQueueDecays(t *testing.T) {
	reg := stats.NewRegistry()
	cfg := DefaultConfig()
	c := New(cfg, reg)
	reg.Seal()
	for i := 0; i < 10; i++ {
		c.Access(uint64(i)*4096, false, 0) // burst at cycle 0
	}
	if c.rdQLen == 0 {
		t.Fatalf("read queue empty after burst")
	}
	// A much later access sees a drained queue.
	c.Access(0x100000, false, 1_000_000)
	if c.rdQLen > 1 {
		t.Fatalf("read queue did not drain: %d", c.rdQLen)
	}
}
