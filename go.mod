module perspectron

go 1.22
