package perspectron

// Streaming scoring sessions: the serving runtime's unit of work. Monitor
// and Classify own their whole run loop; a Session hands control back after
// every sampling interval, so a long-running service (internal/serve) can
// apply per-sample deadlines, walk the degradation ladder mid-run, and shut
// down promptly. Sessions carry their own resolved counter indices — the
// Detector/Classifier they score with is never mutated — so any number of
// concurrent Sessions can share one immutable model, and a hot-reload can
// swap the model under new Sessions while old ones finish on the previous
// version.

import (
	"context"
	"fmt"

	"perspectron/internal/sim"
	"perspectron/internal/trace"
)

// resolveNames maps feature names onto counter indices for machine m without
// touching any model state: counters absent from the machine resolve to -1
// and are masked during scoring. It is the pure core of Detector.resolve and
// Classifier.resolve, shared with Session so scoring stays lock-free under
// concurrency.
func resolveNames(names []string, m *sim.Machine) (indices []int, resolved int) {
	indices = make([]int, len(names))
	for i, name := range names {
		if c, ok := m.Reg.Lookup(name); ok {
			indices[i] = c.Index()
			resolved++
		} else {
			indices[i] = -1
		}
	}
	return indices, resolved
}

// SessionConfig configures one streaming scoring session.
type SessionConfig struct {
	// Workload is the program to run. Required.
	Workload Workload
	// MaxInsts bounds the run's committed-path length; 0 means the
	// workload's natural end.
	MaxInsts uint64
	// Seed drives the workload's data-dependent behaviour.
	Seed int64
	// Faults optionally injects counter-level faults (see FaultConfig);
	// nil runs clean.
	Faults *FaultConfig
}

// Verdict is one sampling interval's combined scoring outcome.
type Verdict struct {
	// Sample is the sampling-interval index within the run.
	Sample int
	// Insts is the committed-instruction count at the sample.
	Insts uint64
	// Score is the detector's normalized output; Flagged is the threshold
	// cut. Zero-valued when the session has no detector.
	Score   float64
	Flagged bool
	// Class is the classifier's per-interval argmax ("" without a
	// classifier); ClassScore its normalized margin.
	Class      string
	ClassScore float64
	// Coverage is the fraction (0..1] of the primary model's features
	// observable at this sample — the degradation ladder's input signal.
	Coverage float64
}

// Session streams one workload run through a detector and/or classifier,
// one sampling interval at a time. Create with NewSession, pull verdicts
// with Next, and Close when done (Close is mandatory on early abandonment —
// it releases the producer goroutine).
type Session struct {
	det    *Detector
	cls    *Classifier
	detIdx []int
	clsIdx []int
	src    *trace.RunSource
	m      *sim.Machine

	interval uint64
	nf       int // primary model's feature width, for Coverage

	// lastRaw/lastPoint hold the most recent Next sample so Attribution can
	// explain the verdict after the fact without re-running the interval.
	lastRaw   []float64
	lastPoint int
}

// NewSession starts a streaming session for cfg.Workload. Either model may
// be nil, but not both; when both are present the detector's sampling
// interval drives the run and the classifier votes on the same raw deltas.
// ctx bounds the whole run (the producer observes it between instruction
// blocks); per-sample deadlines go to Next instead.
func NewSession(ctx context.Context, det *Detector, cls *Classifier, cfg SessionConfig) (*Session, error) {
	if det == nil && cls == nil {
		return nil, fmt.Errorf("perspectron: session needs a detector or a classifier")
	}
	if cfg.Workload == nil {
		return nil, fmt.Errorf("perspectron: session needs a workload")
	}
	m := sim.NewMachine(sim.DefaultConfig())
	s := &Session{det: det, cls: cls, m: m}
	if det != nil {
		idx, resolved := resolveNames(det.FeatureNames, m)
		if resolved == 0 {
			return nil, fmt.Errorf("perspectron: none of the detector's %d counters are present on this machine",
				len(det.FeatureNames))
		}
		s.detIdx = idx
		s.interval = det.Interval
		s.nf = len(det.FeatureNames)
	}
	if cls != nil {
		idx, resolved := resolveNames(cls.FeatureNames, m)
		if resolved == 0 && det == nil {
			return nil, fmt.Errorf("perspectron: none of the classifier's %d counters are present on this machine",
				len(cls.FeatureNames))
		}
		s.clsIdx = idx
		if s.interval == 0 {
			s.interval = cls.Interval
			s.nf = len(cls.FeatureNames)
		}
	}
	if cfg.Faults != nil {
		sched, err := cfg.Faults.schedule(m)
		if err != nil {
			return nil, err
		}
		if sched != nil {
			sched.Attach(m)
		}
	}
	s.src = trace.NewRunSource(ctx, m, cfg.Workload, 0, cfg.Seed,
		trace.CollectConfig{MaxInsts: cfg.MaxInsts, Interval: s.interval})
	return s, nil
}

// Next returns the next interval's verdict, or false when the run has ended
// or ctx expired first. Distinguish the two by ctx.Err(): nil means the run
// genuinely ended (check Err for a workload panic). After a deadline the
// session remains usable — the producer keeps the sample for a later Next.
func (s *Session) Next(ctx context.Context) (*Verdict, bool) {
	smp, ok := s.src.NextCtx(ctx)
	if !ok {
		return nil, false
	}
	s.lastRaw, s.lastPoint = smp.Raw, smp.Index
	v := &Verdict{
		Sample: smp.Index,
		Insts:  uint64(smp.Index+1) * s.interval,
	}
	if s.det != nil {
		score, avail := s.det.scoreWith(smp.Raw, smp.Index, s.detIdx)
		v.Score = score
		v.Flagged = score >= s.det.Threshold
		if s.nf > 0 {
			v.Coverage = float64(avail) / float64(s.nf)
		}
	}
	if s.cls != nil {
		scores, avail := s.cls.classScoresWith(smp.Raw, s.clsIdx)
		best := 0
		for i := 1; i < len(scores); i++ {
			if scores[i] > scores[best] {
				best = i
			}
		}
		v.Class = s.cls.Classes[best]
		v.ClassScore = scores[best]
		if s.det == nil && s.nf > 0 {
			v.Coverage = float64(avail) / float64(s.nf)
		}
	}
	return v, true
}

// Count returns the number of verdicts delivered so far.
func (s *Session) Count() int { return s.src.Count() }

// Err reports a workload panic that ended the stream; valid once Next has
// returned false with a live ctx, or after Close.
func (s *Session) Err() error { return s.src.Err() }

// LeakMarks exposes the workload's completed-disclosure marks (attack loops
// record them); valid once the run has ended.
func (s *Session) LeakMarks() []uint64 { return s.src.LeakMarks() }

// Close stops the underlying run and releases the producer goroutine. Safe
// to call more than once.
func (s *Session) Close() { s.src.Close() }
