package perspectron

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// sharedGolden collects a small held-out golden corpus once for all promotion
// tests (a different seed than trainSmall's, per the CollectGolden contract).
var cachedGolden *GoldenSet

func sharedGolden(t *testing.T) *GoldenSet {
	t.Helper()
	if cachedGolden == nil {
		opts := DefaultOptions()
		opts.MaxInsts = 60_000
		opts.Runs = 1
		opts.Seed = 4242
		workloads := append([]Workload{}, BenignWorkloads()[:2]...)
		workloads = append(workloads, AttackByName("spectreV1", "fr"), AttackByName("flush+reload", ""))
		g, err := CollectGolden(workloads, opts)
		if err != nil {
			t.Fatal(err)
		}
		cachedGolden = g
	}
	return cachedGolden
}

// cloneDetector deep-copies the mutable parts a test perturbs.
func cloneDetector(d *Detector) *Detector {
	c := *d
	c.Weights = append([]float64(nil), d.Weights...)
	c.Lineage = d.Lineage.Clone()
	c.Checksum = ""
	return &c
}

func saveDetector(t *testing.T, d *Detector, path string) {
	t.Helper()
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
}

func readBytes(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRegressionsAgainst(t *testing.T) {
	base := EvalScores{Accuracy: 0.9, Precision: 0.8, Recall: 0.7, FPR: 0.1, F1: 0.75, AUC: 0.95}

	if regs := base.RegressionsAgainst(base); len(regs) != 0 {
		t.Fatalf("identical scores flagged: %v", regs)
	}

	// Regressing on exactly one metric must list exactly that metric.
	oneWorse := base
	oneWorse.Recall = 0.65
	regs := oneWorse.RegressionsAgainst(base)
	if len(regs) != 1 || !strings.HasPrefix(regs[0], "recall") {
		t.Fatalf("single recall regression reported as %v", regs)
	}

	// FPR is gated in the other direction: higher is a regression.
	fprWorse := base
	fprWorse.FPR = 0.2
	regs = fprWorse.RegressionsAgainst(base)
	if len(regs) != 1 || !strings.HasPrefix(regs[0], "fpr") {
		t.Fatalf("fpr regression reported as %v", regs)
	}

	// Improvements and epsilon-sized wobble are not regressions.
	better := base
	better.Accuracy, better.FPR = 0.95, 0.05
	if regs := better.RegressionsAgainst(base); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
	wobble := base
	wobble.Accuracy -= evalEpsilon / 2
	if regs := wobble.RegressionsAgainst(base); len(regs) != 0 {
		t.Fatalf("sub-epsilon wobble flagged: %v", regs)
	}

	// F1 is derived and deliberately ungated.
	f1Worse := base
	f1Worse.F1 = 0.1
	if regs := f1Worse.RegressionsAgainst(base); len(regs) != 0 {
		t.Fatalf("ungated F1 flagged: %v", regs)
	}
}

func TestEvaluateGolden(t *testing.T) {
	det := sharedDetector(t)
	g := sharedGolden(t)
	s := det.EvaluateGolden(g)
	if s.Samples != len(g.Raw) {
		t.Fatalf("scored %d of %d golden samples", s.Samples, len(g.Raw))
	}
	if s.Accuracy < 0 || s.Accuracy > 1 || s.AUC < 0.5 {
		t.Fatalf("implausible golden scores: %+v", s)
	}
	// A detector whose features are absent from the golden space must still
	// evaluate (all masked), mirroring degraded serving.
	alien := cloneDetector(det)
	alien.FeatureNames = append([]string(nil), det.FeatureNames...)
	for i := range alien.FeatureNames {
		alien.FeatureNames[i] = "no-such-counter-" + alien.FeatureNames[i]
	}
	as := alien.EvaluateGolden(g)
	if as.Samples != len(g.Raw) {
		t.Fatalf("fully masked detector scored %d samples", as.Samples)
	}
}

func TestCollectGoldenErrors(t *testing.T) {
	if _, err := CollectGolden(nil, DefaultOptions()); err == nil {
		t.Fatalf("empty workload list accepted")
	}
	opts := DefaultOptions()
	opts.MaxInsts = 50_000
	opts.Runs = 1
	if _, err := CollectGolden(BenignWorkloads()[:2], opts); err == nil {
		t.Fatalf("single-class golden corpus accepted")
	}
}

func TestPromoteRequiresGolden(t *testing.T) {
	if _, err := PromoteDetector("x", "y", nil); err == nil {
		t.Fatalf("nil golden corpus accepted")
	}
	if _, err := PromoteDetector("x", "y", &GoldenSet{}); err == nil {
		t.Fatalf("empty golden corpus accepted")
	}
}

func TestPromoteFirstPromotion(t *testing.T) {
	det := sharedDetector(t)
	g := sharedGolden(t)
	dir := t.TempDir()
	candPath := filepath.Join(dir, "cand.json")
	livePath := filepath.Join(dir, "live.json")
	saveDetector(t, cloneDetector(det), candPath)

	p, err := PromoteDetector(candPath, livePath, g)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Promoted || p.BaselineVersion != "" {
		t.Fatalf("first promotion: %+v", p)
	}
	live, err := LoadFile(livePath)
	if err != nil {
		t.Fatalf("promoted checkpoint unloadable: %v", err)
	}
	if live.Lineage == nil || live.Lineage.Eval == nil || live.Lineage.PromotedAt == "" {
		t.Fatalf("promotion did not stamp lineage: %+v", live.Lineage)
	}
	if live.Lineage.Eval.Samples != len(g.Raw) {
		t.Fatalf("stamped eval covers %d samples, want %d", live.Lineage.Eval.Samples, len(g.Raw))
	}
}

func TestPromoteEqualCandidatePromoted(t *testing.T) {
	det := sharedDetector(t)
	g := sharedGolden(t)
	dir := t.TempDir()
	candPath := filepath.Join(dir, "cand.json")
	livePath := filepath.Join(dir, "live.json")
	baseline := cloneDetector(det)
	saveDetector(t, baseline, livePath)
	saveDetector(t, cloneDetector(det), candPath)

	p, err := PromoteDetector(candPath, livePath, g)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Promoted {
		t.Fatalf("equal candidate rejected: %s", p.Reason)
	}
	if !strings.Contains(p.Reason, "no regression") {
		t.Fatalf("unexpected reason: %s", p.Reason)
	}
	if p.Candidate != p.Baseline {
		t.Fatalf("identical weights scored differently: cand %+v base %+v", p.Candidate, p.Baseline)
	}
	// The gate stamps lineage on a parentless candidate: the promoted file
	// must chain back to the baseline it replaced.
	live, err := LoadFile(livePath)
	if err != nil {
		t.Fatal(err)
	}
	if live.Lineage == nil || live.Lineage.Parent != baseline.Checksum {
		t.Fatalf("promoted lineage parent = %+v, want %s", live.Lineage, baseline.Checksum)
	}
	if live.Lineage.Generation != 1 {
		t.Fatalf("generation = %d, want 1", live.Lineage.Generation)
	}
}

func TestPromoteRegressedCandidateRejected(t *testing.T) {
	det := sharedDetector(t)
	g := sharedGolden(t)
	dir := t.TempDir()
	candPath := filepath.Join(dir, "cand.json")
	livePath := filepath.Join(dir, "live.json")
	saveDetector(t, cloneDetector(det), livePath)
	liveBefore := readBytes(t, livePath)

	// Negated weights invert every score: a maximally regressed candidate.
	bad := cloneDetector(det)
	for i := range bad.Weights {
		bad.Weights[i] = -bad.Weights[i]
	}
	bad.Bias = -bad.Bias
	saveDetector(t, bad, candPath)

	p, err := PromoteDetector(candPath, livePath, g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Promoted {
		t.Fatalf("regressed candidate promoted (cand %+v, base %+v)", p.Candidate, p.Baseline)
	}
	if !strings.Contains(p.Reason, "regressed") {
		t.Fatalf("unexpected rejection reason: %s", p.Reason)
	}
	if !bytes.Equal(readBytes(t, livePath), liveBefore) {
		t.Fatalf("rejection modified the live checkpoint")
	}
	if p.RejectedPath != livePath+".rejected" {
		t.Fatalf("rejected path = %q", p.RejectedPath)
	}
	rej, err := LoadFile(p.RejectedPath)
	if err != nil {
		t.Fatalf("preserved rejected candidate unloadable: %v", err)
	}
	if rej.Lineage == nil || rej.Lineage.Eval == nil || rej.Lineage.PromotedAt != "" {
		t.Fatalf("rejected lineage stamp wrong: %+v", rej.Lineage)
	}
}

func TestPromoteCorruptCandidateRejected(t *testing.T) {
	det := sharedDetector(t)
	g := sharedGolden(t)
	dir := t.TempDir()
	candPath := filepath.Join(dir, "cand.json")
	livePath := filepath.Join(dir, "live.json")
	saveDetector(t, cloneDetector(det), livePath)
	liveBefore := readBytes(t, livePath)

	// Truncate a valid checkpoint mid-file: decodes as neither valid JSON
	// nor a checksum-clean payload.
	good := readBytes(t, livePath)
	if err := os.WriteFile(candPath, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	p, err := PromoteDetector(candPath, livePath, g)
	if err != nil {
		t.Fatalf("corrupt candidate must be a rejection, not an error: %v", err)
	}
	if p.Promoted {
		t.Fatalf("corrupt candidate promoted")
	}
	if !strings.Contains(p.Reason, "unloadable") {
		t.Fatalf("unexpected reason: %s", p.Reason)
	}
	if p.RejectedPath != "" {
		t.Fatalf("unloadable candidate claims a rejected copy at %q", p.RejectedPath)
	}
	if !bytes.Equal(readBytes(t, livePath), liveBefore) {
		t.Fatalf("corrupt candidate modified the live checkpoint")
	}
}

// TestPromoteConcurrentReload drives repeated promotions against a reader
// hot-reloading the live path, as the serving watcher does: every concurrent
// load must observe a complete, checksum-clean checkpoint (run under -race).
func TestPromoteConcurrentReload(t *testing.T) {
	det := sharedDetector(t)
	g := sharedGolden(t)
	dir := t.TempDir()
	candPath := filepath.Join(dir, "cand.json")
	livePath := filepath.Join(dir, "live.json")
	saveDetector(t, cloneDetector(det), livePath)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := LoadFile(livePath); err != nil {
				t.Errorf("hot-reload observed a torn checkpoint: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 10; i++ {
		saveDetector(t, cloneDetector(det), candPath)
		p, err := PromoteDetector(candPath, livePath, g)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Promoted {
			t.Fatalf("round %d: equal candidate rejected: %s", i, p.Reason)
		}
	}
	close(stop)
	wg.Wait()
}
