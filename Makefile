GO ?= go

.PHONY: ci vet build test race bench

# ci is the gate for every PR: static analysis, a full build, and the test
# suite under the race detector (trace.Collect and the experiments fan out
# across goroutines).
ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .
