GO ?= go
# BENCHTIME bounds each benchmark's measurement time; 1x runs one iteration,
# which is enough for the JSON artifact and keeps `make bench` CI-friendly.
BENCHTIME ?= 1x
# BENCH filters which benchmarks run (a go test -bench regexp).
BENCH ?= .
# HOTPATH_BENCHTIME governs the hot-path kernel benchmarks only: 5x yields
# five samples per arm, the minimum benchjson accepts for BENCH_hotpath.json
# (single-iteration numbers are noise and the bench-select guard compares
# the two Select arms from this artifact).
HOTPATH_BENCHTIME ?= 5x
# BENCH_HISTORY, when non-empty, makes each bench artifact also append a
# timestamped JSONL line to this trajectory file (scripts/bench_append.sh
# sets it), so perf history accumulates instead of being overwritten.
BENCH_HISTORY ?=
BENCH_APPEND = $(if $(BENCH_HISTORY),-append $(BENCH_HISTORY),)

.PHONY: ci vet build test race bench bench-hotpath bench-select bench-history smoke-serve smoke-chaos smoke-shadow smoke-explain smoke-crash

# ci is the gate for every PR: static analysis, a full build, and the test
# suite under the race detector (trace.Collect and the experiments fan out
# across goroutines).
ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m ./...

# smoke-serve exercises the long-running detection service end to end with a
# race-enabled binary: readiness, corrupt-checkpoint rollback via /healthz and
# /metrics, and clean SIGTERM drain (see scripts/serve_smoke.sh).
smoke-serve:
	bash scripts/serve_smoke.sh

# smoke-chaos is the serve-layer chaos gate: the in-process chaos harness
# (scorer panics, stalled sources, checkpoint corruption, load spikes —
# concurrently) under the race detector with a bounded wall clock, then a
# real-binary overload drive that must shed loudly while /readyz stays
# truthful (see scripts/serve_chaos.sh).
smoke-chaos:
	bash scripts/serve_chaos.sh

# bench runs the root-package benchmarks plus the telemetry micro-benchmarks
# with -benchmem, tees the text log to bench.out, and converts it into the
# machine-readable BENCH_telemetry.json artifact. It then runs the hot-path
# kernel benchmarks (dense/serial baseline vs packed/parallel, see
# docs/PERFORMANCE.md) into the BENCH_hotpath.json baseline, and the serve
# saturation benchmark (1k+ concurrent streams vs p99 verdict latency and
# shed rate, see docs/SERVICE.md) into BENCH_serve.json.
bench: bench-hotpath
	$(GO) test -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) -run '^$$' . ./internal/telemetry | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH_telemetry.json $(BENCH_APPEND)
	$(GO) test -bench '^BenchmarkServe(Saturation|ForensicsOverhead)$$' -benchtime $(BENCHTIME) -run '^$$' ./internal/serve | tee bench_serve.out
	$(GO) run ./cmd/benchjson -in bench_serve.out -out BENCH_serve.json $(BENCH_APPEND)

# bench-hotpath regenerates BENCH_hotpath.json with enough samples per arm
# (-min-iters 5) that the artifact is trustworthy enough to gate on.
bench-hotpath:
	$(GO) test -bench '^Benchmark(Select|Fit|CrossValidate)$$' -benchmem -benchtime $(HOTPATH_BENCHTIME) -run '^$$' . | tee bench_hotpath.out
	$(GO) run ./cmd/benchjson -in bench_hotpath.out -out BENCH_hotpath.json -min-iters 5 $(BENCH_APPEND)

# bench-select is the selection-regression guard (CI-gated): re-check the
# committed BENCH_hotpath.json and fail if the parallel-packed Select arm is
# not strictly faster than the serial-dense baseline, or if either arm was
# recorded from fewer than 5 iterations.
bench-select:
	$(GO) run ./cmd/benchjson -injson BENCH_hotpath.json -min-iters 5 \
		-require-faster 'BenchmarkSelect/parallel-packed<BenchmarkSelect/serial-dense'

# bench-history is `make bench` plus the timestamped trajectory: every run
# appends one JSONL line per artifact to BENCH_history.jsonl (see
# scripts/bench_append.sh).
bench-history:
	bash scripts/bench_append.sh

# smoke-shadow runs a miniature continual-learning loop end to end under the
# race detector: train a seed model, serve it, shadow-retrain and promote
# through the non-regression gate, and assert the supervisor hot-reloads the
# promoted version (see scripts/shadow_smoke.sh).
smoke-shadow:
	bash scripts/shadow_smoke.sh

# smoke-explain is the verdict-forensics gate: a bounded serve run must stamp
# trace IDs, stage timings and feature attributions into the verdict log, and
# `perspectron explain` must reconstruct a recorded verdict offline with a
# bit-for-bit identical attribution — and catch a tampered log with a
# non-zero exit (see scripts/explain_smoke.sh and docs/OBSERVABILITY.md).
smoke-explain:
	bash scripts/explain_smoke.sh

# smoke-crash is the crash-safety gate: SIGKILL a real serve child mid-load in
# a loop and assert recovery every time — torn log tails repaired, the durable
# ledger balances (enqueued == records + lost) across incarnations, and
# `perspectron explain` reproduces post-recovery verdicts bit-for-bit (see
# scripts/crash_smoke.sh and docs/FAULTS.md).
smoke-crash:
	bash scripts/crash_smoke.sh
