// Command perspectron trains and runs the PerSpectron detector.
//
// Subcommands:
//
//	perspectron train  [-out detector.json] [-insts N] [-runs N] [-seed N] [-cachedir DIR]
//	perspectron detect [-in detector.json] -workload <name> [-channel fr|ff|pp]
//	                   [-bandwidth F] [-poly N] [-insts N] [-seed N]
//	                   [-dropout F] [-stuck0 F] [-stuckmax F] [-noise F]
//	                   [-jitter F] [-blackout comp[:from[:to]]] [-faultseed N]
//	perspectron info   [-in detector.json]
//	perspectron serve  [-in detector.json] [-classifier classifier.json]
//	                   [-workloads name,name|all|attacks|benign] [-channel fr|ff|pp]
//	                   [-insts N] [-seed N] [-episodes N] [-verdicts FILE]
//	                   [-sample-timeout D] [-episode-timeout D] [-poll D]
//	                   [-shards N] [-queue-depth N] [-batch N]
//	                   [-load-high F] [-load-critical F]
//	                   [-attr-k N] [-attr-benign-every N] [-flight N]
//	                   [-slow-sample D] [-slo-latency D]
//	                   [-slo-latency-budget F] [-slo-shed-budget F]
//	                   [-dropout F] [-stuck0 F] [-stuckmax F] [-faultseed N]
//	                   [-state FILE] [-log-flush D] [-no-last-good]
//	                   [-disk-faults SPEC] [-disk-fault-seed N]
//	perspectron explain -verdicts FILE [-in detector.json]
//	                   [-trace ID | -index N] [-force] [-json]
//	perspectron list
//
// `detect` monitors the named workload on a fresh simulated machine and
// prints the per-interval confidence, the flag point, and whether detection
// preceded the first disclosure. The fault flags inject deterministic
// counter-level faults into the sampled vectors (see docs/FAULTS.md); the
// detector then runs in degraded mode and the report states its coverage.
//
// `serve` runs the long-lived supervised detection service (docs/SERVICE.md):
// one worker per workload streaming raw samples over a consistent-hash ring
// into bounded per-shard queues with deterministic shedding and
// backpressure, checkpoint hot-reload with rollback, graceful degradation
// on both counter coverage and queue load, and /healthz + /readyz next to
// /metrics when -metrics-addr is given. SIGINT/SIGTERM drains cleanly,
// flushing the verdict log.
//
// `explain` reconstructs a recorded verdict offline (docs/OBSERVABILITY.md):
// given the JSONL verdict log and the detector checkpoint version stamped
// into the record, it re-derives the score and the top-k weight×bit feature
// attributions from the recorded fired set and diffs them against what the
// serving path logged — bit-for-bit when nothing was tampered with. Exit
// status 1 means the reconstruction diverged.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"perspectron"
	"perspectron/internal/corpus"
	"perspectron/internal/diskfaults"
	"perspectron/internal/serve"
	"perspectron/internal/shadow"
	"perspectron/internal/telemetry/telemetrycli"
)

// armDiskFaults installs the process-wide disk-fault injector from a
// -disk-faults rule spec (no-op when the spec is empty). The injected write
// paths are the durability sites: checkpoint saves, the verdict log, the
// corpus disk cache, and the serve/shadow state files.
func armDiskFaults(spec string, seed int64) {
	if spec == "" {
		return
	}
	if err := diskfaults.ArmSpec(diskfaults.Enable(seed), spec); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "disk faults armed: %s (seed %d)\n", spec, seed)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "train":
		cmdTrain(os.Args[2:])
	case "detect":
		cmdDetect(os.Args[2:])
	case "classify-train":
		cmdClassifyTrain(os.Args[2:])
	case "classify":
		cmdClassify(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "shadow":
		cmdShadow(os.Args[2:])
	case "explain":
		cmdExplain(os.Args[2:])
	case "list":
		cmdList()
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: perspectron {train|detect|classify-train|classify|info|serve|shadow|explain|list} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perspectron:", err)
	os.Exit(1)
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	out := fs.String("out", "detector.json", "output path for the trained detector")
	insts := fs.Uint64("insts", 300_000, "committed instructions per training run")
	runs := fs.Int("runs", 2, "runs per workload")
	seed := fs.Int64("seed", 1, "random seed")
	interval := fs.Uint64("interval", 10_000, "sampling granularity")
	cacheDir := fs.String("cachedir", "", "on-disk corpus cache directory (reuses collected datasets across invocations)")
	tel := telemetrycli.Register(fs)
	fs.Parse(args)
	stop, err := tel.Start()
	if err != nil {
		fatal(err)
	}
	defer stop()

	opts := perspectron.DefaultOptions()
	opts.MaxInsts = *insts
	opts.Runs = *runs
	opts.Seed = *seed
	opts.Interval = *interval
	if *cacheDir != "" {
		if err := perspectron.SetCacheDir(*cacheDir); err != nil {
			fatal(err)
		}
	}

	fmt.Fprintln(os.Stderr, "training on the full workload corpus...")
	workloads := perspectron.TrainingWorkloads()
	det, err := perspectron.Train(workloads, opts)
	if err != nil {
		fatal(err)
	}
	// Re-fetch the training dataset (a free memory hit on the corpus store)
	// to surface collection health: runs the fault shield retried or dropped.
	ds := corpus.Default().Dataset(workloads, opts.CollectConfig())
	if ds.Retried > 0 || len(ds.Dropped) > 0 {
		fmt.Fprintf(os.Stderr, "collection: %d runs retried, %d dropped\n",
			ds.Retried, len(ds.Dropped))
		for _, d := range ds.Dropped {
			fmt.Fprintf(os.Stderr, "  dropped %s\n", d)
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := det.Save(f); err != nil {
		fatal(err)
	}
	h := det.Hardware()
	fmt.Fprintf(os.Stderr, "trained detector: %d features, threshold %.2f\n",
		det.NumFeatures(), det.Threshold)
	fmt.Fprintf(os.Stderr, "hardware: %d-cycle inference, %d weight bits, %.2f µs sampling\n",
		h.InferenceCycles(), h.WeightStorageBits(), h.SamplingIntervalUs())
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func loadDetector(path string) *perspectron.Detector {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	det, err := perspectron.Load(f)
	if err != nil {
		fatal(err)
	}
	return det
}

func cmdDetect(args []string) {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	in := fs.String("in", "detector.json", "trained detector path")
	name := fs.String("workload", "", "workload to monitor (see `perspectron list`)")
	channel := fs.String("channel", "fr", "disclosure channel for attacks")
	bandwidth := fs.Float64("bandwidth", 1.0, "attack bandwidth factor (1.0 = unmodified)")
	poly := fs.Int("poly", -1, "polymorphic SpectreV1 variant index (0-11), -1 = off")
	insts := fs.Uint64("insts", 200_000, "instructions to monitor")
	seed := fs.Int64("seed", 42, "workload seed")
	dropout := fs.Float64("dropout", 0, "per-sample probability each counter reading is lost")
	stuck0 := fs.Float64("stuck0", 0, "fraction of counters stuck at zero for the whole run")
	stuckMax := fs.Float64("stuckmax", 0, "fraction of counters stuck at their saturation value")
	noise := fs.Float64("noise", 0, "relative sigma of multiplicative Gaussian counter noise")
	jitter := fs.Float64("jitter", 0, "sampling-interval jitter fraction")
	blackout := fs.String("blackout", "", "black out one component: comp[:from[:to]] (e.g. dcache:2:5)")
	faultSeed := fs.Int64("faultseed", 1, "fault-schedule seed")
	tel := telemetrycli.Register(fs)
	fs.Parse(args)
	stop, err := tel.Start()
	if err != nil {
		fatal(err)
	}
	defer stop()
	if *name == "" && *poly < 0 {
		fmt.Fprintln(os.Stderr, "detect: -workload required (or -poly)")
		os.Exit(2)
	}
	fc := perspectron.FaultConfig{
		Seed:      *faultSeed,
		Dropout:   *dropout,
		StuckZero: *stuck0,
		StuckMax:  *stuckMax,
		Noise:     *noise,
		Jitter:    *jitter,
	}
	if *blackout != "" {
		parts := strings.SplitN(*blackout, ":", 3)
		fc.Blackout = parts[0]
		var err error
		if len(parts) > 1 {
			if fc.BlackoutFrom, err = strconv.Atoi(parts[1]); err != nil {
				fatal(fmt.Errorf("bad -blackout window %q: %v", *blackout, err))
			}
		}
		if len(parts) > 2 {
			if fc.BlackoutTo, err = strconv.Atoi(parts[2]); err != nil {
				fatal(fmt.Errorf("bad -blackout window %q: %v", *blackout, err))
			}
		}
	}
	faulty := fc.Dropout > 0 || fc.StuckZero > 0 || fc.StuckMax > 0 ||
		fc.Noise > 0 || fc.Jitter > 0 || fc.Blackout != ""

	det := loadDetector(*in)
	var w perspectron.Workload
	switch {
	case *poly >= 0:
		w = perspectron.PolymorphicVariants(*channel)[*poly%12]
	default:
		w = perspectron.AttackByName(*name, *channel)
		if w == nil {
			for _, b := range perspectron.BenignWorkloads() {
				if b.Info().Name == *name {
					w = b
				}
			}
		}
	}
	if w == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q; try `perspectron list`\n", *name)
		os.Exit(2)
	}
	if *bandwidth < 1.0 {
		w = perspectron.ReduceBandwidth(w, *bandwidth)
	}

	var rep *perspectron.Report
	if faulty {
		rep, err = det.MonitorFaulty(w, *insts, *seed, fc)
	} else {
		rep, err = det.Monitor(w, *insts, *seed)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload: %s (ground truth: malicious=%v)\n", rep.Workload, rep.Malicious)
	if rep.Degraded {
		fmt.Printf("DEGRADED mode: %.1f%% of the feature set observable\n", rep.Coverage*100)
	}
	for _, s := range rep.Samples {
		mark := " "
		if s.Flagged {
			mark = "!"
		}
		fmt.Printf("  sample %3d  insts %8d  score %+.3f %s\n", s.Index, s.Insts, s.Score, mark)
	}
	if rep.Detected {
		fmt.Printf("DETECTED at sample %d", rep.FirstFlag)
		if len(rep.LeakSamples) > 0 {
			if rep.LeakBefore {
				fmt.Printf(" (first leak at sample %d: post-leakage)", rep.LeakSamples[0])
			} else {
				fmt.Printf(" (first leak at sample %d: detected pre-leakage)", rep.LeakSamples[0])
			}
		}
		fmt.Println()
	} else {
		fmt.Println("no detection")
	}
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "detector.json", "trained detector path")
	fs.Parse(args)
	det := loadDetector(*in)
	fmt.Printf("features:  %d\n", det.NumFeatures())
	fmt.Printf("threshold: %.2f\n", det.Threshold)
	fmt.Printf("interval:  %d instructions\n", det.Interval)
	h := det.Hardware()
	fmt.Printf("hardware:  %d-cycle inference, %d weight bits, %.2f µs sampling\n",
		h.InferenceCycles(), h.WeightStorageBits(), h.SamplingIntervalUs())
	sus, ben := det.TopFeatures(8)
	fmt.Println("\nmost suspicious features:")
	for _, f := range sus {
		fmt.Printf("  %+8.3f  %s\n", f.Weight, f.Name)
	}
	fmt.Println("most benign features:")
	for _, f := range ben {
		fmt.Printf("  %+8.3f  %s\n", f.Weight, f.Name)
	}
}

func cmdClassifyTrain(args []string) {
	fs := flag.NewFlagSet("classify-train", flag.ExitOnError)
	out := fs.String("out", "classifier.json", "output path for the trained classifier")
	insts := fs.Uint64("insts", 300_000, "committed instructions per training run")
	runs := fs.Int("runs", 2, "runs per workload")
	seed := fs.Int64("seed", 1, "random seed")
	cacheDir := fs.String("cachedir", "", "on-disk corpus cache directory (shared with `perspectron train`)")
	tel := telemetrycli.Register(fs)
	fs.Parse(args)
	stop, err := tel.Start()
	if err != nil {
		fatal(err)
	}
	defer stop()

	opts := perspectron.DefaultOptions()
	opts.MaxInsts = *insts
	opts.Runs = *runs
	opts.Seed = *seed
	if *cacheDir != "" {
		if err := perspectron.SetCacheDir(*cacheDir); err != nil {
			fatal(err)
		}
	}

	fmt.Fprintln(os.Stderr, "training the multi-way classifier...")
	c, err := perspectron.TrainClassifier(perspectron.TrainingWorkloads(), opts)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := c.Save(f); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "classes: %v\nwrote %s\n", c.Classes, *out)
}

func cmdClassify(args []string) {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	in := fs.String("in", "classifier.json", "trained classifier path")
	name := fs.String("workload", "", "workload to classify")
	channel := fs.String("channel", "fr", "disclosure channel for attacks")
	insts := fs.Uint64("insts", 100_000, "instructions to observe")
	seed := fs.Int64("seed", 42, "workload seed")
	tel := telemetrycli.Register(fs)
	fs.Parse(args)
	stop, err := tel.Start()
	if err != nil {
		fatal(err)
	}
	defer stop()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "classify: -workload required")
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	c, err := perspectron.LoadClassifier(f)
	if err != nil {
		fatal(err)
	}

	w := perspectron.AttackByName(*name, *channel)
	if w == nil {
		for _, b := range perspectron.BenignWorkloads() {
			if b.Info().Name == *name {
				w = b
			}
		}
	}
	if w == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *name)
		os.Exit(2)
	}
	res, err := c.Classify(w, *insts, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload: %s\nclass:    %s (%.0f%% of intervals)\nvotes:    %v\n",
		res.Workload, res.Class, res.Confidence*100, res.Votes)
}

// resolveWorkloads expands the -workloads flag: "all" (training corpus),
// "attacks", "benign", or a comma-separated list of workload names resolved
// like `detect` does.
func resolveWorkloads(spec, channel string) ([]perspectron.Workload, error) {
	switch spec {
	case "all":
		return perspectron.TrainingWorkloads(), nil
	case "attacks":
		return perspectron.AttackWorkloads(), nil
	case "benign":
		return perspectron.BenignWorkloads(), nil
	}
	var progs []perspectron.Workload
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		w := perspectron.AttackByName(name, channel)
		if w == nil {
			for _, b := range perspectron.BenignWorkloads() {
				if b.Info().Name == name {
					w = b
				}
			}
		}
		if w == nil {
			return nil, fmt.Errorf("unknown workload %q; try `perspectron list`", name)
		}
		progs = append(progs, w)
	}
	if len(progs) == 0 {
		return nil, fmt.Errorf("-workloads resolved to nothing")
	}
	return progs, nil
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	in := fs.String("in", "detector.json", "detector checkpoint to serve and watch for hot-reload")
	clsPath := fs.String("classifier", "", "optional classifier checkpoint (enables the top ladder rung)")
	spec := fs.String("workloads", "benign", "streams to monitor: all|attacks|benign or comma-separated names")
	channel := fs.String("channel", "fr", "disclosure channel for attack workloads")
	insts := fs.Uint64("insts", 100_000, "committed instructions per episode")
	seed := fs.Int64("seed", 1, "base seed, varied per worker and episode")
	episodes := fs.Int("episodes", 0, "stop each worker after N episodes (0 = run until signalled)")
	verdicts := fs.String("verdicts", "-", "verdict log destination: - for stdout, empty to disable, else a file (appended)")
	sampleTimeout := fs.Duration("sample-timeout", 2*time.Second, "per-sample deadline before an episode fails")
	episodeTimeout := fs.Duration("episode-timeout", 60*time.Second, "whole-episode deadline")
	poll := fs.Duration("poll", 500*time.Millisecond, "checkpoint watch cadence (negative disables hot-reload)")
	shards := fs.Int("shards", 0, "scoring shards on the consistent-hash ring (0 = min(GOMAXPROCS, 8))")
	queueDepth := fs.Int("queue-depth", 0, "per-shard pending-sample cap; a full queue sheds loudly (0 = 1024)")
	batch := fs.Int("batch", 0, "max samples per scorer sweep (0 = 256)")
	loadHigh := fs.Float64("load-high", 0, "queue pressure that starts backpressure + classifier demotion (0 = 0.75)")
	loadCritical := fs.Float64("load-critical", 0, "queue pressure that demotes to the threshold rung (0 = 0.9)")
	attrK := fs.Int("attr-k", 0, "top-k feature attributions stamped on flagged verdicts (0 = 5, negative disables)")
	attrBenign := fs.Int("attr-benign-every", 0, "also attribute every Nth benign verdict per shard (0 = off)")
	flightSize := fs.Int("flight", 0, "flight-recorder capacity for /debug/verdicts (0 = 256, negative disables)")
	slowSample := fs.Duration("slow-sample", 0, "enqueue-to-verdict latency that emits a slow-sample exemplar to -trace-out (0 = 250ms, negative disables)")
	sloLatency := fs.Duration("slo-latency", 0, "verdict-latency SLO target for the burn-rate gauges (0 = 50ms, negative disables SLO tracking)")
	sloLatencyBudget := fs.Float64("slo-latency-budget", 0, "error budget: tolerated fraction of verdicts over -slo-latency (0 = 0.01)")
	sloShedBudget := fs.Float64("slo-shed-budget", 0, "error budget: tolerated shed fraction (0 = 0.01)")
	noTrace := fs.Bool("no-stage-trace", false, "disable per-sample trace IDs and stage timings in verdict records")
	dropout := fs.Float64("dropout", 0, "per-sample counter dropout probability (fault injection)")
	stuck0 := fs.Float64("stuck0", 0, "fraction of counters stuck at zero")
	stuckMax := fs.Float64("stuckmax", 0, "fraction of counters stuck at saturation")
	faultSeed := fs.Int64("faultseed", 1, "fault-schedule seed")
	shadowOn := fs.Bool("shadow", false, "run the continual-learning shadow trainer in-process (retrain + gated promotion against -in)")
	shadowSpec := fs.String("shadow-workloads", "all", "shadow trainer's fresh-corpus source: all|attacks|benign or names")
	shadowInterval := fs.Duration("shadow-interval", 30*time.Second, "cadence of shadow-training rounds")
	shadowBudget := fs.Int("shadow-budget", 0, "incremental epochs per shadow round (0 = 50)")
	shadowInsts := fs.Uint64("shadow-insts", 120_000, "committed instructions per shadow fresh-corpus run")
	driftThr := fs.Float64("drift-threshold", 0.25, "smoothed drift level that raises the /healthz drift alarm")
	statePath := fs.String("state", "", "durable accounting state file for file-based -verdicts (default <verdicts>.state)")
	logFlush := fs.Duration("log-flush", 0, "verdict-log flush + state-persist cadence in file mode (0 = 500ms, negative disables the loop)")
	noLastGood := fs.Bool("no-last-good", false, "do not bank verified checkpoints as .last-good fallback copies")
	faultSpec := fs.String("disk-faults", "", "inject disk faults: comma-separated site:op:kind[:after=N][:count=N][:rate=F] rules (sites checkpoint|verdictlog|corpus|servestate|shadowstate|*; ops create|write|sync|rename; kinds torn|enospc|eio|syncfail|crash)")
	faultDiskSeed := fs.Int64("disk-fault-seed", 1, "seed for probabilistic (rate=) disk-fault rules")
	tel := telemetrycli.Register(fs)
	fs.Parse(args)

	armDiskFaults(*faultSpec, *faultDiskSeed)

	workloads, err := resolveWorkloads(*spec, *channel)
	if err != nil {
		fatal(err)
	}
	cfg := serve.Config{
		DetectorPath:   *in,
		ClassifierPath: *clsPath,
		Workloads:      workloads,
		MaxInsts:       *insts,
		Seed:           *seed,
		MaxEpisodes:    *episodes,
		SampleTimeout:  *sampleTimeout,
		EpisodeTimeout: *episodeTimeout,
		PollInterval:   *poll,
		Shards:         *shards,
		QueueDepth:     *queueDepth,
		Batch:          *batch,
		LoadHigh:       *loadHigh,
		LoadCritical:   *loadCritical,

		DisableTracing:   *noTrace,
		AttributionK:     *attrK,
		AttrBenignEvery:  *attrBenign,
		FlightSize:       *flightSize,
		SlowSample:       *slowSample,
		SLOLatencyTarget: *sloLatency,
		SLOLatencyBudget: *sloLatencyBudget,
		SLOShedBudget:    *sloShedBudget,
	}
	if *dropout > 0 || *stuck0 > 0 || *stuckMax > 0 {
		cfg.Faults = &perspectron.FaultConfig{
			Seed:      *faultSeed,
			Dropout:   *dropout,
			StuckZero: *stuck0,
			StuckMax:  *stuckMax,
		}
	}
	switch *verdicts {
	case "":
	case "-":
		cfg.VerdictLog = serve.NewVerdictLog(os.Stdout)
	default:
		// File-based verdicts run in crash-safe mode: the supervisor owns
		// the file, repairs any torn tail from a previous crash, reconciles
		// the durable accounting ledger, and flushes on a cadence.
		cfg.VerdictLogPath = *verdicts
		cfg.StatePath = *statePath
		cfg.LogFlushInterval = *logFlush
		cfg.DisableLastGood = *noLastGood
	}

	sup, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	if rep := sup.Report(); rep != nil {
		fmt.Fprintln(os.Stderr, "serve: "+rep.String())
	}
	// Health endpoints ride on the metrics server; register before Start.
	tel.Extra = sup.Handlers()
	stop, err := tel.Start()
	if err != nil {
		fatal(err)
	}
	defer stop()
	sup.SetListenAddr(tel.Bound) // /healthz self-reports the scrape address

	det, cls := sup.Models().Versions()
	fmt.Fprintf(os.Stderr, "serve: %d workers, detector %s, classifier %s\n",
		len(workloads), det, cls)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// In-process shadow trainer: retrains -in incrementally in the
	// background and promotes through the gate; the supervisor's watcher
	// hot-reloads whatever gets promoted, and its health surface reflects
	// the trainer's drift EWMA.
	var shadowWg sync.WaitGroup
	if *shadowOn {
		shadowWorkloads, err := resolveWorkloads(*shadowSpec, *channel)
		if err != nil {
			fatal(err)
		}
		sopts := perspectron.DefaultOptions()
		sopts.MaxInsts = *shadowInsts
		sopts.Runs = 1
		sopts.Seed = *seed
		scfg := shadow.Config{
			DetectorPath:   *in,
			Workloads:      shadowWorkloads,
			Opts:           sopts,
			Budget:         *shadowBudget,
			Interval:       *shadowInterval,
			DriftThreshold: *driftThr,
		}
		if *verdicts != "" && *verdicts != "-" {
			scfg.VerdictLog = *verdicts
		}
		trainer, err := shadow.New(scfg)
		if err != nil {
			fatal(err)
		}
		sup.SetDriftProbe(trainer.Drift)
		shadowWg.Add(1)
		go func() {
			defer shadowWg.Done()
			trainer.Run(ctx)
		}()
		fmt.Fprintf(os.Stderr, "serve: shadow trainer every %s (budget %d epochs/round)\n",
			*shadowInterval, *shadowBudget)
	}

	err = sup.Run(ctx)
	cancel() // release the shadow trainer when workers finish first
	shadowWg.Wait()
	switch {
	case err == nil:
		fmt.Fprintln(os.Stderr, "serve: all workers completed")
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "serve: drained cleanly on signal")
	default:
		fatal(err)
	}
}

// cmdShadow runs the continual-learning loop standalone: tail a serving
// verdict log (optional), retrain the live checkpoint incrementally on
// fresh corpus rounds, and promote candidates through the non-regression
// gate. A `perspectron serve` watching the same checkpoint hot-reloads
// every promotion.
func cmdShadow(args []string) {
	fs := flag.NewFlagSet("shadow", flag.ExitOnError)
	in := fs.String("in", "detector.json", "live detector checkpoint to retrain and promote")
	verdicts := fs.String("verdicts", "", "serving verdict log (JSONL file) to tail; empty disables")
	statePath := fs.String("state", "", "tail-offset state file, persisted atomically per round (default <verdicts>.offset)")
	faultSpec := fs.String("disk-faults", "", "inject disk faults (see `perspectron serve -h` for the rule grammar)")
	faultDiskSeed := fs.Int64("disk-fault-seed", 1, "seed for probabilistic (rate=) disk-fault rules")
	spec := fs.String("workloads", "all", "fresh-corpus source: all|attacks|benign or comma-separated names")
	channel := fs.String("channel", "fr", "disclosure channel for attack workloads")
	interval := fs.Duration("interval", 30*time.Second, "round cadence")
	budget := fs.Int("budget", 0, "incremental epochs per round (0 = 50)")
	rounds := fs.Int("rounds", 0, "run N rounds then exit (0 = run until signalled)")
	insts := fs.Uint64("insts", 120_000, "committed instructions per fresh-corpus run")
	runs := fs.Int("runs", 1, "runs per workload per round")
	seed := fs.Int64("seed", 1, "base seed, varied per round")
	driftThr := fs.Float64("drift-threshold", 0.25, "smoothed drift level that raises the alarm")
	cacheDir := fs.String("cachedir", "", "on-disk corpus cache directory")
	tel := telemetrycli.Register(fs)
	fs.Parse(args)

	workloads, err := resolveWorkloads(*spec, *channel)
	if err != nil {
		fatal(err)
	}
	if *cacheDir != "" {
		if err := perspectron.SetCacheDir(*cacheDir); err != nil {
			fatal(err)
		}
	}
	opts := perspectron.DefaultOptions()
	opts.MaxInsts = *insts
	opts.Runs = *runs
	opts.Seed = *seed
	armDiskFaults(*faultSpec, *faultDiskSeed)
	trainer, err := shadow.New(shadow.Config{
		DetectorPath:   *in,
		VerdictLog:     *verdicts,
		StatePath:      *statePath,
		Workloads:      workloads,
		Opts:           opts,
		Budget:         *budget,
		Interval:       *interval,
		DriftThreshold: *driftThr,
	})
	if err != nil {
		fatal(err)
	}
	tel.Extra = trainer.Handlers()
	stop, err := tel.Start()
	if err != nil {
		fatal(err)
	}
	defer stop()
	trainer.SetListenAddr(tel.Bound)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *rounds > 0 {
		for i := 0; i < *rounds && ctx.Err() == nil; i++ {
			r, err := trainer.RunOnce(ctx)
			if err != nil {
				fatal(err)
			}
			status := "rejected"
			if r.Promotion != nil && r.Promotion.Promoted {
				status = "promoted " + r.Promotion.CandidateVersion
			}
			fmt.Fprintf(os.Stderr,
				"shadow: round %d: %d fresh samples, %d epochs, drift %.4f (ewma %.4f), %s (%s)\n",
				r.Round, r.FreshSamples, r.Epochs, r.Drift, r.SmoothedDrift, status, r.Promotion.Reason)
		}
		h := trainer.Health()
		fmt.Fprintf(os.Stderr, "shadow: %d rounds, %d promoted, %d rejected, drift %.4f\n",
			h.Rounds, h.Promotions, h.Rejections, h.Drift)
		return
	}
	fmt.Fprintf(os.Stderr, "shadow: training every %s against %s\n", *interval, *in)
	if err := trainer.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "shadow: stopped on signal")
}

// cmdExplain is the offline half of verdict forensics: pick one record out
// of a JSONL verdict log (by trace ID, by position, or the most recent
// attributed one), re-derive its score and top-k feature attributions from
// the recorded fired set using the detector checkpoint, and diff the
// reconstruction against what the serving path logged. A consistent record
// reproduces bit-for-bit; exit status 1 flags divergence (a tampered log, a
// wrong checkpoint, or a scoring bug).
func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	verdicts := fs.String("verdicts", "", "JSONL verdict log to read (required)")
	in := fs.String("in", "detector.json", "detector checkpoint that produced the verdicts")
	trace := fs.String("trace", "", "select the record with this trace ID (worker/episode/sample)")
	index := fs.Int("index", -1, "select the Nth record in the log, 0-based (-1 = last attributed record)")
	force := fs.Bool("force", false, "explain across a checkpoint-version mismatch (expect diffs)")
	asJSON := fs.Bool("json", false, "emit the full explanation as JSON instead of the report")
	fs.Parse(args)
	if *verdicts == "" {
		fmt.Fprintln(os.Stderr, "explain: -verdicts required")
		os.Exit(2)
	}

	recs, corrupt, _, err := serve.ReadVerdictLog(*verdicts, 0)
	if err != nil {
		fatal(err)
	}
	if corrupt > 0 {
		fmt.Fprintf(os.Stderr, "explain: skipped %d corrupt lines\n", corrupt)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("no verdict records in %s", *verdicts))
	}
	var rec *serve.VerdictRecord
	switch {
	case *trace != "":
		for i := range recs {
			if recs[i].Trace == *trace {
				rec = &recs[i]
				break
			}
		}
		if rec == nil {
			fatal(fmt.Errorf("no record with trace %q in %s", *trace, *verdicts))
		}
	case *index >= 0:
		if *index >= len(recs) {
			fatal(fmt.Errorf("index %d out of range: %s holds %d records", *index, *verdicts, len(recs)))
		}
		rec = &recs[*index]
	default:
		for i := len(recs) - 1; i >= 0; i-- {
			if len(recs[i].Fired) > 0 {
				rec = &recs[i]
				break
			}
		}
		if rec == nil {
			fatal(fmt.Errorf("no attributed records in %s (serve with attribution enabled, see -attr-k)", *verdicts))
		}
	}

	det := loadDetector(*in)
	e, err := serve.Explain(det, *rec, *force)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(e); err != nil {
			fatal(err)
		}
	} else {
		printExplanation(e)
	}
	if !e.Consistent() {
		os.Exit(1)
	}
}

func printExplanation(e *serve.Explanation) {
	r := e.Record
	fmt.Printf("verdict %s  (worker %s, episode %d, sample %d)\n",
		r.Trace, r.Worker, r.Episode, r.Sample)
	fmt.Printf("  mode %s  score %+.6f  flagged=%v  version %s\n",
		r.Mode, r.Score, r.Flagged, r.Version)
	if r.LatencyMs > 0 {
		logMs := r.LatencyMs - r.QueueMs - r.BatchMs - r.ScoreMs
		if logMs < 0 {
			logMs = 0
		}
		fmt.Printf("  stages: queue %.3fms + batch %.3fms + score %.3fms + log %.3fms = %.3fms\n",
			r.QueueMs, r.BatchMs, r.ScoreMs, logMs, r.LatencyMs)
	}
	fmt.Printf("\nreconstructed from %d fired features (checkpoint %s):\n",
		len(r.Fired), e.Version)
	fmt.Printf("  score %+.6f  (recorded %+.6f, match=%v)\n", e.Score, r.Score, e.ScoreMatch)
	for i, c := range e.Attr {
		fmt.Printf("  %2d. %-44s weight %+8.4f  share %+6.1f%%\n",
			i+1, c.Feature, c.Weight, c.Share*100)
	}
	if e.Consistent() {
		fmt.Println("\nconsistent: reconstruction matches the recorded verdict bit-for-bit")
		return
	}
	fmt.Println("\nDIVERGED from the recorded verdict:")
	for _, d := range e.Diffs {
		fmt.Printf("  - %s\n", d)
	}
}

func cmdList() {
	fmt.Println("attacks:")
	for _, a := range perspectron.AttackWorkloads() {
		i := a.Info()
		fmt.Printf("  %-20s category=%s channel=%s\n", i.Name, i.Category, i.Channel)
	}
	fmt.Println("benign:")
	for _, b := range perspectron.BenignWorkloads() {
		fmt.Printf("  %s\n", b.Info().Name)
	}
}
