// Command benchjson converts `go test -bench` text output into a JSON
// report, so benchmark runs (e.g. `make bench`) leave a machine-readable
// artifact next to the console log.
//
// Usage:
//
//	go test -bench . -benchmem | benchjson -out BENCH.json
//	benchjson -in bench.out -out BENCH.json -min-iters 5
//	benchjson -injson BENCH.json -require-faster 'BenchmarkSelect/parallel-packed<BenchmarkSelect/serial-dense'
//
// Each benchmark result line
//
//	BenchmarkName-8   100   123 ns/op   45 B/op   6 allocs/op   0.99 accuracy
//
// becomes one entry with the iteration count and every unit-tagged metric.
//
// Guardrails: single-iteration entries are pure noise, so benchjson always
// warns about them and refuses them outright under -min-iters. The
// -require-faster flag (repeatable via comma separation) turns the report
// into a trajectory gate: 'A<B' fails the run unless benchmark A's ns/op is
// strictly below B's. With -injson an existing report is re-checked without
// re-running the benchmarks, which is how `make bench-select` gates CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted JSON document.
type Report struct {
	// Time stamps the run (RFC 3339, UTC) — set only on history lines
	// written via -append, so the trajectory file is self-dating.
	Time       string   `json:"time,omitempty"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "-", "benchmark text input file (- for stdin)")
	inJSON := flag.String("injson", "", "existing benchjson report to re-check (guards only, no output written)")
	out := flag.String("out", "-", "JSON output file (- for stdout)")
	appendTo := flag.String("append", "", "also append the report as one timestamped JSONL line to this history file")
	minIters := flag.Int64("min-iters", 0, "fail if any benchmark ran fewer iterations (0: warn on 1-iteration entries only)")
	faster := flag.String("require-faster", "", "comma-separated 'A<B' pairs; fail unless ns/op of A is strictly below B")
	flag.Parse()

	var rep *Report
	if *inJSON != "" {
		var err error
		if rep, err = loadReport(*inJSON); err != nil {
			fatal(err)
		}
	} else {
		var r io.Reader = os.Stdin
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			r = f
		}
		var err error
		if rep, err = parse(r); err != nil {
			fatal(err)
		}
	}

	if err := checkIterations(rep, *minIters); err != nil {
		fatal(err)
	}
	if err := checkFaster(rep, *faster); err != nil {
		fatal(err)
	}

	if *inJSON != "" {
		// Guard-only mode: the report already exists on disk; just say so.
		fmt.Fprintf(os.Stderr, "benchjson: %s ok (%d benchmarks)\n", *inJSON, len(rep.Benchmarks))
		return
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	}
	if *appendTo != "" {
		if err := appendHistory(*appendTo, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: appended run to %s\n", *appendTo)
	}
}

// loadReport reads a previously emitted report back for guard re-checks.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// checkIterations enforces the minimum iteration count. Single-iteration
// entries are always flagged — one sample has no variance estimate — but
// only fail the run when -min-iters demands more.
func checkIterations(rep *Report, min int64) error {
	for _, b := range rep.Benchmarks {
		if min > 0 && b.Iterations < min {
			return fmt.Errorf("%s ran %d iterations, need >= %d (raise -benchtime)", b.Name, b.Iterations, min)
		}
		if b.Iterations == 1 {
			fmt.Fprintf(os.Stderr, "benchjson: warning: %s ran a single iteration — its numbers are noise\n", b.Name)
		}
	}
	return nil
}

// checkFaster enforces 'A<B' ns/op orderings, e.g. the parallel-packed vs
// serial-dense selection guard.
func checkFaster(rep *Report, spec string) error {
	if spec == "" {
		return nil
	}
	nsop := func(name string) (float64, error) {
		for _, b := range rep.Benchmarks {
			if b.Name == name {
				v, ok := b.Metrics["ns/op"]
				if !ok {
					return 0, fmt.Errorf("%s has no ns/op metric", name)
				}
				return v, nil
			}
		}
		return 0, fmt.Errorf("benchmark %q not found in report", name)
	}
	for _, pair := range strings.Split(spec, ",") {
		a, b, ok := strings.Cut(strings.TrimSpace(pair), "<")
		if !ok {
			return fmt.Errorf("bad -require-faster pair %q, want 'A<B'", pair)
		}
		va, err := nsop(strings.TrimSpace(a))
		if err != nil {
			return err
		}
		vb, err := nsop(strings.TrimSpace(b))
		if err != nil {
			return err
		}
		if va >= vb {
			return fmt.Errorf("regression: %s (%.0f ns/op) is not faster than %s (%.0f ns/op)", a, va, b, vb)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s (%.0f ns/op) faster than %s (%.0f ns/op): %.2fx\n",
			strings.TrimSpace(a), va, strings.TrimSpace(b), vb, vb/va)
	}
	return nil
}

// appendHistory appends the report as one compact, timestamped JSON line, so
// repeated bench runs accumulate a trajectory instead of overwriting the
// snapshot artifact.
func appendHistory(path string, rep *Report) error {
	line := *rep
	line.Time = time.Now().UTC().Format(time.RFC3339)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return json.NewEncoder(f).Encode(&line)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse reads `go test -bench` output: header key: value lines and
// Benchmark... result lines; everything else (test logs, PASS/ok) is skipped.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			if rep.Pkg == "" {
				rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			}
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, res)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line into a Result; ok is false for lines that
// merely start with "Benchmark" but are not results.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	if i := strings.LastIndexByte(res.Name, '-'); i > 0 {
		if procs, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Procs = procs
			res.Name = res.Name[:i]
		}
	}
	// Remaining fields are value/unit pairs: "123 ns/op", "0.99 accuracy".
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
