// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run all|fig1,table3,...|fig1|table1|table2|table3|table4|fig3|fig4|fig5|
//	                  timing|weights|multiway|mitigate|rhmd|zeroday|sched|faulttol]
//	            [-quick] [-seed N] [-insts N] [-runs N] [-cachedir DIR]
//
// -run accepts a single experiment, "all", or a comma-separated list run in
// the canonical order. Every experiment collects its corpus through the
// shared artifact store, so a dataset is simulated at most once per process;
// -cachedir extends the reuse across invocations. A cache-traffic summary is
// printed after the run.
//
// Each experiment prints its paper artefact as text, with the paper's
// reported numbers alongside for comparison. EXPERIMENTS.md records a full
// run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"perspectron/internal/corpus"
	"perspectron/internal/experiments"
	"perspectron/internal/telemetry"
	"perspectron/internal/telemetry/telemetrycli"
)

type renderer interface{ Render() string }

func main() {
	run := flag.String("run", "all", "experiment(s) to run: all, a single name, or a comma-separated list (fig1, table1, table2, table3, table4, fig3, fig4, fig5, timing, weights, multiway, mitigate, rhmd, zeroday, sched, faulttol)")
	quick := flag.Bool("quick", false, "use the reduced quick configuration")
	seed := flag.Int64("seed", 1, "global random seed")
	insts := flag.Uint64("insts", 0, "override committed instructions per program run")
	runs := flag.Int("runs", 0, "override independent runs per program")
	cacheDir := flag.String("cachedir", "", "on-disk corpus cache directory (reuses collected datasets across invocations)")
	tel := telemetrycli.Register(flag.CommandLine)
	flag.Parse()
	stop, err := tel.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stop()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed
	if *insts > 0 {
		cfg.MaxInsts = *insts
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *cacheDir != "" {
		if err := corpus.Default().SetCacheDir(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "cachedir: %v\n", err)
			os.Exit(1)
		}
	}

	all := []struct {
		name string
		fn   func() renderer
	}{
		{"table2", func() renderer { return experiments.Table2() }},
		{"fig1", func() renderer { return experiments.Fig1(cfg) }},
		{"table1", func() renderer { return experiments.Table1(cfg) }},
		{"table3", func() renderer { return experiments.Table3(cfg) }},
		{"fig5", func() renderer { return experiments.Fig5(cfg) }},
		{"table4", func() renderer { return experiments.Table4(cfg) }},
		{"fig3", func() renderer { return experiments.Fig3(cfg) }},
		{"fig4", func() renderer { return experiments.Fig4(cfg) }},
		{"timing", func() renderer { return experiments.Timing() }},
		{"weights", func() renderer { return experiments.Weights(cfg) }},
		{"multiway", func() renderer { return experiments.Multiway(cfg) }},
		{"mitigate", func() renderer { return experiments.Mitigate(cfg) }},
		{"rhmd", func() renderer { return experiments.RHMD(cfg) }},
		{"zeroday", func() renderer { return experiments.ZeroDay(cfg) }},
		{"sched", func() renderer { return experiments.Sched(cfg) }},
		{"faulttol", func() renderer { return experiments.FaultTol(cfg) }},
	}

	// -run accepts "all", one name, or a comma-separated list; experiments
	// always execute in the canonical order above, independent of the order
	// named on the command line.
	want := map[string]bool{}
	runAll := false
	for _, name := range strings.Split(strings.ToLower(*run), ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "all" {
			runAll = true
			continue
		}
		known := false
		for _, e := range all {
			if e.name == name {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		want[name] = true
	}
	if !runAll && len(want) == 0 {
		fmt.Fprintf(os.Stderr, "no experiments selected by -run %q\n", *run)
		os.Exit(2)
	}

	before := corpus.Default().Stats()
	ctx, rootSpan := telemetry.StartSpan(context.Background(), "experiments")
	for _, e := range all {
		if !runAll && !want[e.name] {
			continue
		}
		start := time.Now()
		fmt.Printf("==== %s ====\n\n", e.name)
		_, span := telemetry.Get().StartSpan(ctx, e.name)
		fmt.Println(e.fn().Render())
		span.End()
		fmt.Printf("[%s completed in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	rootSpan.End()
	delta := corpus.Default().Stats().Sub(before)
	fmt.Printf("[corpus cache: %s]\n", delta)
	if delta.RunsDropped > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d collection runs were dropped; results cover the surviving runs\n",
			delta.RunsDropped)
	}
}
