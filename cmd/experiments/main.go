// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run all|fig1|table1|table2|table3|table4|fig3|fig4|fig5|timing|weights|
//	                  multiway|mitigate|rhmd|zeroday|sched|faulttol]
//	            [-quick] [-seed N] [-insts N] [-runs N]
//
// Each experiment prints its paper artefact as text, with the paper's
// reported numbers alongside for comparison. EXPERIMENTS.md records a full
// run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"perspectron/internal/experiments"
)

type renderer interface{ Render() string }

func main() {
	run := flag.String("run", "all", "experiment to run (all, fig1, table1, table2, table3, table4, fig3, fig4, fig5, timing, weights, multiway, mitigate, rhmd, zeroday, sched, faulttol)")
	quick := flag.Bool("quick", false, "use the reduced quick configuration")
	seed := flag.Int64("seed", 1, "global random seed")
	insts := flag.Uint64("insts", 0, "override committed instructions per program run")
	runs := flag.Int("runs", 0, "override independent runs per program")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed
	if *insts > 0 {
		cfg.MaxInsts = *insts
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}

	all := []struct {
		name string
		fn   func() renderer
	}{
		{"table2", func() renderer { return experiments.Table2() }},
		{"fig1", func() renderer { return experiments.Fig1(cfg) }},
		{"table1", func() renderer { return experiments.Table1(cfg) }},
		{"table3", func() renderer { return experiments.Table3(cfg) }},
		{"fig5", func() renderer { return experiments.Fig5(cfg) }},
		{"table4", func() renderer { return experiments.Table4(cfg) }},
		{"fig3", func() renderer { return experiments.Fig3(cfg) }},
		{"fig4", func() renderer { return experiments.Fig4(cfg) }},
		{"timing", func() renderer { return experiments.Timing() }},
		{"weights", func() renderer { return experiments.Weights(cfg) }},
		{"multiway", func() renderer { return experiments.Multiway(cfg) }},
		{"mitigate", func() renderer { return experiments.Mitigate(cfg) }},
		{"rhmd", func() renderer { return experiments.RHMD(cfg) }},
		{"zeroday", func() renderer { return experiments.ZeroDay(cfg) }},
		{"sched", func() renderer { return experiments.Sched(cfg) }},
		{"faulttol", func() renderer { return experiments.FaultTol(cfg) }},
	}

	want := strings.ToLower(*run)
	matched := false
	for _, e := range all {
		if want != "all" && want != e.name {
			continue
		}
		matched = true
		start := time.Now()
		fmt.Printf("==== %s ====\n\n", e.name)
		fmt.Println(e.fn().Render())
		fmt.Printf("[%s completed in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(2)
	}
}
