// Command tracegen collects labelled microarchitectural counter traces from
// the simulated machine and writes them as CSV — the equivalent of the
// paper's gem5 statistics dumps.
//
// Usage:
//
//	tracegen [-out traces.csv] [-insts 300000] [-interval 10000]
//	         [-runs 2] [-seed 1] [-workloads all|attacks|benign] [-cachedir DIR]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"perspectron/internal/corpus"
	"perspectron/internal/sim"
	"perspectron/internal/telemetry/telemetrycli"
	"perspectron/internal/trace"
	"perspectron/internal/workload"
	"perspectron/internal/workload/attacks"
	"perspectron/internal/workload/benign"
)

func main() {
	out := flag.String("out", "traces.csv", "output CSV path (- for stdout)")
	insts := flag.Uint64("insts", 300_000, "committed instructions per program run")
	interval := flag.Uint64("interval", 10_000, "sampling granularity in instructions")
	runs := flag.Int("runs", 2, "independent runs per program")
	seed := flag.Int64("seed", 1, "global random seed")
	which := flag.String("workloads", "all", "workload set: all, attacks, benign")
	statsFor := flag.String("stats", "", "instead of CSV traces, run this one workload and dump a gem5-style stats.txt to stdout")
	cacheDir := flag.String("cachedir", "", "on-disk corpus cache directory shared with the other tools")
	tel := telemetrycli.Register(flag.CommandLine)
	flag.Parse()
	stop, err := tel.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stop()

	if *cacheDir != "" {
		if err := corpus.Default().SetCacheDir(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "cachedir: %v\n", err)
			os.Exit(1)
		}
	}

	if *statsFor != "" {
		dumpStats(*statsFor, *insts, *interval, *seed)
		return
	}

	var progs []workload.Program
	switch *which {
	case "attacks":
		progs = attacks.TrainingSet()
	case "benign":
		progs = benign.All()
	case "all":
		progs = append(progs, benign.All()...)
		progs = append(progs, attacks.TrainingSet()...)
		for _, cat := range []string{"spectre_v1", "spectre_v2", "spectre_rsb", "meltdown", "cacheout"} {
			progs = append(progs, attacks.WithChannel(cat, "pp"))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload set %q\n", *which)
		os.Exit(2)
	}

	ds := corpus.Default().Dataset(progs, trace.CollectConfig{
		MaxInsts: *insts,
		Interval: *interval,
		Seed:     *seed,
		Runs:     *runs,
	})
	fmt.Fprintln(os.Stderr, ds.Summary())

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

// dumpStats runs one named workload on a fresh machine and prints the full
// counter state in gem5 stats.txt format.
func dumpStats(name string, insts, interval uint64, seed int64) {
	var prog workload.Program
	for _, p := range append(append([]workload.Program{}, benign.All()...), attacks.TrainingSet()...) {
		if p.Info().Name == name {
			prog = p
		}
	}
	if prog == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", name)
		os.Exit(2)
	}
	m := sim.NewMachine(sim.DefaultConfig())
	m.Run(prog.Stream(rand.New(rand.NewSource(seed))), insts, interval)
	if err := m.Reg.Dump(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
