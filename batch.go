package perspectron

// Batched raw-sample scoring: the serving runtime's shard path. A Session
// owns one stream and scores inline; a RawScorer instead scores raw
// counter-delta vectors handed to it from many streams — the bounded-queue
// ingest stage in internal/serve drains a whole shard's tick through one
// scorer, so a shard of hundreds of streams costs one bit-pack plus one
// packed margin sweep per sample instead of a dense dot product per stream.
// The models are read, never written (the same immutability contract as
// Session), so any number of RawScorers can share one hot-reloaded pair.

import (
	"context"
	"fmt"

	"perspectron/internal/encoding"
	"perspectron/internal/sim"
)

// RawSample is one sampling interval's raw counter-delta vector as produced
// by Session.NextRaw, before any scoring: the unit of work the serving
// ingest queues carry. Raw is machine-width (indexed by counter, not model
// slot) and may contain NaN/Inf fault sentinels.
type RawSample struct {
	// Sample is the sampling-interval index within the run (the encoding's
	// execution point).
	Sample int
	// Raw is the machine-width counter-delta vector. The slice is owned by
	// the caller once returned; the session never rewrites it.
	Raw []float64
}

// NextRaw returns the next interval's raw sample without scoring it, or
// false when the run has ended or ctx expired first — the producer half of
// the serving runtime's ingest stage. It shares Next's deadline semantics:
// distinguish run-end from deadline by ctx.Err(), and the session remains
// usable after a deadline. Mixing Next and NextRaw on one session is
// allowed; each sample is delivered exactly once.
func (s *Session) NextRaw(ctx context.Context) (RawSample, bool) {
	smp, ok := s.src.NextCtx(ctx)
	if !ok {
		return RawSample{}, false
	}
	return RawSample{Sample: smp.Index, Raw: smp.Raw}, true
}

// RawScorer scores RawSamples against an immutable Detector/Classifier pair
// through the bit-packed hot path: each sample is packed once per model
// encoding, the detector margin is one MarginPacked sweep, and the
// classifier's one-vs-rest bank reuses a single packed vector for all
// classes. Counter indices are resolved against the standard machine
// configuration at construction, exactly as a Session resolves them, so a
// RawScorer and a Session scoring the same raw vector produce bit-identical
// results (pinned by TestRawScorerMatchesSession).
//
// A RawScorer reuses internal scratch buffers and is NOT safe for
// concurrent use — give each shard scorer its own.
type RawScorer struct {
	det    *Detector
	cls    *Classifier
	detIdx []int
	clsIdx []int
	nfDet  int
	nfCls  int

	detBits encoding.BitVec // scratch, reused across calls
	clsBits encoding.BitVec
	scores  []float64
}

// NewRawScorer builds a scorer for the model pair; either model may be nil
// but not both. Indices resolve against a fresh default machine — the same
// homogeneous configuration every serving Session runs on.
func NewRawScorer(det *Detector, cls *Classifier) (*RawScorer, error) {
	if det == nil && cls == nil {
		return nil, fmt.Errorf("perspectron: raw scorer needs a detector or a classifier")
	}
	m := sim.NewMachine(sim.DefaultConfig())
	r := &RawScorer{det: det, cls: cls}
	if det != nil {
		idx, resolved := resolveNames(det.FeatureNames, m)
		if resolved == 0 {
			return nil, fmt.Errorf("perspectron: none of the detector's %d counters are present on this machine",
				len(det.FeatureNames))
		}
		r.detIdx = idx
		r.nfDet = len(det.FeatureNames)
	}
	if cls != nil {
		idx, resolved := resolveNames(cls.FeatureNames, m)
		if resolved == 0 && det == nil {
			return nil, fmt.Errorf("perspectron: none of the classifier's %d counters are present on this machine",
				len(cls.FeatureNames))
		}
		r.clsIdx = idx
		r.nfCls = len(cls.FeatureNames)
	}
	return r, nil
}

// Detect scores one raw sample with the detector: the normalized margin,
// the threshold cut, and the fraction of detector features observable (the
// degradation ladder's input). With no detector it returns zeros.
func (r *RawScorer) Detect(s RawSample) (score float64, flagged bool, coverage float64) {
	if r.det == nil {
		return 0, false, 0
	}
	var avail int
	r.detBits, avail = r.det.encoding().BitsPacked(s.Raw, r.detIdx, s.Sample, r.detBits)
	score = encoding.MarginPacked(r.det.Bias, r.det.Weights, r.detBits)
	return score, score >= r.det.Threshold, float64(avail) / float64(r.nfDet)
}

// Classify names one raw sample's class with the classifier bank: the
// argmax class, its normalized margin, and the classifier-feature coverage.
// With no classifier it returns ("", 0, 0).
func (r *RawScorer) Classify(s RawSample) (class string, score float64, coverage float64) {
	if r.cls == nil {
		return "", 0, 0
	}
	var avail int
	r.clsBits, avail = r.cls.encoding().BitsPacked(s.Raw, r.clsIdx, -1, r.clsBits)
	if cap(r.scores) < len(r.cls.Classes) {
		r.scores = make([]float64, len(r.cls.Classes))
	}
	scores := r.scores[:len(r.cls.Classes)]
	best := 0
	for ci := range r.cls.Classes {
		scores[ci] = encoding.MarginPacked(r.cls.Biases[ci], r.cls.Weights[ci], r.clsBits)
		if scores[ci] > scores[best] {
			best = ci
		}
	}
	return r.cls.Classes[best], scores[best], float64(avail) / float64(r.nfCls)
}
