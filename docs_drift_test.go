package perspectron

// Doc-drift guard for the metric catalogue: every perspectron_* series
// registered by non-test code must have a row in docs/OBSERVABILITY.md's
// tables, and every row there must correspond to a series the code still
// registers. The code side extracts quoted `perspectron_...` string literals
// (both quote styles), which is exactly where series names live — prose
// mentions in comments don't count; the docs side extracts tokens from
// `|`-prefixed table rows only, so examples in shell snippets don't count
// either. Add the series to the catalogue when you add the instrument;
// delete the row when you delete it.

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var (
	codeSeriesRe = regexp.MustCompile("[\"`](perspectron_[a-z0-9_]+)")
	docSeriesRe  = regexp.MustCompile(`perspectron_[a-z0-9_]+`)
)

func TestMetricCatalogueMatchesCode(t *testing.T) {
	code := map[string]string{} // series -> first file registering it
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", ".corpus-cache", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range codeSeriesRe.FindAllStringSubmatch(string(b), -1) {
			if _, ok := code[m[1]]; !ok {
				code[m[1]] = path
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(code) == 0 {
		t.Fatal("no perspectron_* series literals found in code — the scanner is broken")
	}

	docBytes, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := map[string]bool{}
	for _, line := range strings.Split(string(docBytes), "\n") {
		if !strings.HasPrefix(strings.TrimSpace(line), "|") {
			continue
		}
		for _, m := range docSeriesRe.FindAllString(line, -1) {
			doc[m] = true
		}
	}
	if len(doc) == 0 {
		t.Fatal("no perspectron_* series rows found in docs/OBSERVABILITY.md — the extractor is broken")
	}

	var missing []string
	for s, file := range code {
		if !doc[s] {
			missing = append(missing, s+" (registered in "+file+")")
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("series %s has no row in the docs/OBSERVABILITY.md catalogue", m)
	}
	var stale []string
	for s := range doc {
		if _, ok := code[s]; !ok {
			stale = append(stale, s)
		}
	}
	sort.Strings(stale)
	for _, s := range stale {
		t.Errorf("docs/OBSERVABILITY.md catalogues %s but no non-test code registers it", s)
	}
}
